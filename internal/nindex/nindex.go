// Package nindex implements a neuron-centric diagnostic index in the style
// of DeepEverest's Neural Partition Index: one small secondary index per
// stored column (neuron) that answers TOPK and threshold (FilterRows)
// queries by touching only the blocks that can contribute, instead of
// scanning every row.
//
// An Index holds three summaries of one column:
//
//   - an equi-depth value histogram (quantile boundaries over the non-NaN
//     values), the column's distribution at a glance;
//   - a priority-ordered row list: row ids sorted by activation under the
//     pinned total order of internal/diag (value descending, NaN last, row
//     id ascending on ties), cut into fixed-size segments whose row ids
//     are delta-varint encoded — a top-k probe decodes only the prefix
//     segments that can hold the first k positions, a threshold probe only
//     the segments whose [min, max] straddles or clears the bound;
//   - per-RowBlock min/max zones, mirroring the store's zone maps, which
//     the engine's KNN uses to lower-bound the distance of whole blocks
//     and skip them (PlanKNN).
//
// Ordering is the load-bearing invariant: every probe answer is defined by
// diag.RankLess, the same comparator the naive full-scan oracles use, so
// index and scan results are byte-identical — parity is exact, not
// approximate — and the differential harness in nindex/oracletest can
// assert equality across randomized inputs including NaN/±Inf, constant
// columns, duplicates and all-equal ties.
//
// Indexes are built lazily on first use (see Manager), persisted with
// CRC32-C footers under the store's temp→fsync→rename discipline, and
// stamped with the column's physical signature so a stale index is
// detected and rebuilt, never trusted.
package nindex

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"
	"sort"

	"mistique/internal/diag"
)

// Config holds the build-time knobs of one index.
type Config struct {
	// SegmentEntries is the priority-list segment length (default 1024,
	// matching the default RowBlock height): a TOPK(k) probe decodes
	// ceil(k/SegmentEntries) segments.
	SegmentEntries int
	// HistogramBins is the equi-depth histogram resolution (default 64).
	HistogramBins int
}

func (c Config) withDefaults() Config {
	if c.SegmentEntries <= 0 {
		c.SegmentEntries = 1024
	}
	if c.HistogramBins <= 0 {
		c.HistogramBins = 64
	}
	return c
}

// Entry is one (row, value) pair of a probe answer, in rank order.
type Entry struct {
	Row   int
	Value float32
}

// Zone is a per-RowBlock min/max summary over the block's non-NaN values.
// An inverted range (Min > Max) marks a block with no usable bounds (all
// NaN, or unknown); it can never be pruned.
type Zone struct {
	Min, Max float32
	Count    int
}

// Histogram is the equi-depth value distribution of a column: Bounds has
// len(Counts)+1 quantile boundaries over the non-NaN values, Counts the
// (near-equal) per-bin row counts, NaNs the rows excluded.
type Histogram struct {
	Bounds []float32
	Counts []int
	NaNs   int
}

// segment is one run of the priority-ordered row list. Row ids are stored
// delta-varint encoded in ascending order; values are stored as raw
// little-endian float32 in the same (row-ascending) order, in a separate
// buffer so a full-match threshold probe can decode rows without values.
// max/min are the first/last values of the run in priority order; nan
// marks the NaN tail (such segments match no predicate).
type segment struct {
	nan     bool
	count   int
	max     float32
	min     float32
	rowsEnc []byte
	valsEnc []byte
}

// Index is the per-column Neural Partition Index. Immutable once built;
// safe for concurrent probes.
type Index struct {
	sig       uint32
	rows      int
	blockRows int
	hist      Histogram
	zones     []Zone
	segs      []segment
	// nonNaN is the number of leading segments holding non-NaN entries.
	nonNaN int
	bytes  int64
}

// Build constructs the index over one column's values. blockRows is the
// RowBlock height (for the per-block zones); sig is the column's physical
// signature (see colstore.ColumnSignature) stamped into the index for
// staleness detection.
func Build(values []float32, blockRows int, sig uint32, cfg Config) *Index {
	cfg = cfg.withDefaults()
	if blockRows <= 0 {
		blockRows = 1024
	}
	n := len(values)
	x := &Index{sig: sig, rows: n, blockRows: blockRows}

	// Priority order under the pinned comparator; NaNs land at the tail.
	// The comparator is diag.RankLess, but packed into sortable uint64
	// keys (rankKey) so the build sorts machine words instead of calling
	// a closure ~n·log n times — the build cost is what lazy construction
	// amortizes, so it must stay under a couple of full scans.
	keys := make([]uint64, n)
	for i, v := range values {
		keys[i] = rankKey(v, i)
	}
	slices.Sort(keys)
	order := make([]int, n)
	for i, k := range keys {
		order[i] = int(uint32(k))
	}
	nanStart := n
	for i, r := range order {
		if math.IsNaN(float64(values[r])) {
			nanStart = i
			break
		}
	}

	cut := func(lo, hi int, nan bool) {
		for s := lo; s < hi; s += cfg.SegmentEntries {
			e := s + cfg.SegmentEntries
			if e > hi {
				e = hi
			}
			x.segs = append(x.segs, buildSegment(values, order[s:e], nan))
		}
	}
	cut(0, nanStart, false)
	x.nonNaN = len(x.segs)
	cut(nanStart, n, true)

	x.hist = buildHistogram(values, cfg.HistogramBins)
	x.zones = buildZones(values, blockRows)
	x.bytes = x.footprint()
	return x
}

// rankKey packs one (value, row) pair into a uint64 whose ascending
// order is exactly diag.RankLess: value descending, NaN after every
// value, ties (including -0 vs +0, which compare equal) broken by
// ascending row id. The high word is the value's order-flipped sortable
// bits, the low word the row.
func rankKey(v float32, row int) uint64 {
	var d uint32
	switch {
	case math.IsNaN(float64(v)):
		d = 0xFFFFFFFF // past -Inf's 0xFF800000: NaNs rank last
	default:
		if v == 0 {
			v = 0 // normalize -0: RankLess ties it with +0
		}
		bits := math.Float32bits(v)
		if bits&0x80000000 != 0 {
			bits = ^bits // negative: flip everything for ascending order
		} else {
			bits |= 0x80000000 // positive: set sign so it sorts above negatives
		}
		d = ^bits // flip the ascending order: highest value = smallest key
	}
	return uint64(d)<<32 | uint64(uint32(row))
}

// buildSegment encodes one priority-order run: entries re-sorted by
// ascending row id, rows delta-varint encoded, values raw in the same
// order. max/min come from the priority order (first/last of the run).
func buildSegment(values []float32, run []int, nan bool) segment {
	seg := segment{nan: nan, count: len(run)}
	if len(run) > 0 {
		seg.max = values[run[0]]
		seg.min = values[run[len(run)-1]]
	}
	rows := make([]int, len(run))
	copy(rows, run)
	sort.Ints(rows)
	var scratch [binary.MaxVarintLen64]byte
	seg.rowsEnc = make([]byte, 0, len(rows)*2)
	prev := 0
	for i, r := range rows {
		d := r
		if i > 0 {
			d = r - prev
		}
		seg.rowsEnc = append(seg.rowsEnc, scratch[:binary.PutUvarint(scratch[:], uint64(d))]...)
		prev = r
	}
	seg.valsEnc = make([]byte, 4*len(rows))
	for i, r := range rows {
		binary.LittleEndian.PutUint32(seg.valsEnc[4*i:], math.Float32bits(values[r]))
	}
	return seg
}

func buildHistogram(values []float32, bins int) Histogram {
	sorted := make([]float32, 0, len(values))
	nans := 0
	for _, v := range values {
		if math.IsNaN(float64(v)) {
			nans++
			continue
		}
		sorted = append(sorted, v)
	}
	h := Histogram{NaNs: nans}
	n := len(sorted)
	if n == 0 {
		return h
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if bins > n {
		bins = n
	}
	h.Bounds = make([]float32, bins+1)
	h.Counts = make([]int, bins)
	for b := 0; b < bins; b++ {
		h.Bounds[b] = sorted[b*n/bins]
		h.Counts[b] = (b+1)*n/bins - b*n/bins
	}
	h.Bounds[bins] = sorted[n-1]
	return h
}

func buildZones(values []float32, blockRows int) []Zone {
	var zones []Zone
	for lo := 0; lo < len(values); lo += blockRows {
		hi := lo + blockRows
		if hi > len(values) {
			hi = len(values)
		}
		z := Zone{Min: float32(math.Inf(1)), Max: float32(math.Inf(-1)), Count: hi - lo}
		for _, v := range values[lo:hi] {
			if v < z.Min {
				z.Min = v
			}
			if v > z.Max {
				z.Max = v
			}
		}
		zones = append(zones, z)
	}
	return zones
}

func (x *Index) footprint() int64 {
	b := int64(64)
	b += int64(4*(len(x.hist.Bounds)+2*len(x.hist.Counts)) + 12*len(x.zones))
	for i := range x.segs {
		b += 24 + int64(len(x.segs[i].rowsEnc)+len(x.segs[i].valsEnc))
	}
	return b
}

// Sig returns the column signature the index was built against.
func (x *Index) Sig() uint32 { return x.sig }

// Rows returns the number of rows the index covers.
func (x *Index) Rows() int { return x.rows }

// Bytes returns the approximate resident size of the index.
func (x *Index) Bytes() int64 { return x.bytes }

// Segments returns the number of priority-list segments.
func (x *Index) Segments() int { return len(x.segs) }

// Hist returns the equi-depth value histogram.
func (x *Index) Hist() Histogram { return x.hist }

// BlockZones returns the per-RowBlock min/max summaries.
func (x *Index) BlockZones() []Zone { return x.zones }

// decodeRows decodes a segment's delta-varint row list, validating
// monotonicity and range so a corrupted (but checksum-passing) payload
// surfaces as an error instead of nonsense rows.
func (s *segment) decodeRows(maxRows int) ([]int, error) {
	rows := make([]int, 0, s.count)
	buf := s.rowsEnc
	prev := -1
	for len(rows) < s.count {
		d, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("nindex: truncated row list (%d of %d rows)", len(rows), s.count)
		}
		buf = buf[n:]
		r := int(d)
		if len(rows) > 0 {
			r = prev + int(d)
		}
		if r <= prev || r >= maxRows {
			return nil, fmt.Errorf("nindex: row id %d out of order or range (rows=%d)", r, maxRows)
		}
		rows = append(rows, r)
		prev = r
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("nindex: %d trailing bytes after row list", len(buf))
	}
	return rows, nil
}

func (s *segment) decodeVals() ([]float32, error) {
	if len(s.valsEnc) != 4*s.count {
		return nil, fmt.Errorf("nindex: value payload %dB for %d entries", len(s.valsEnc), s.count)
	}
	vals := make([]float32, s.count)
	for i := range vals {
		vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(s.valsEnc[4*i:]))
	}
	return vals, nil
}

// TopK returns the k highest-activation rows in diag.RankLess order,
// decoding only the prefix segments that can contain the first k
// positions of the priority order. decoded reports how many segments were
// decoded (the partial-scan signal).
func (x *Index) TopK(k int) (entries []Entry, decoded int, err error) {
	if k > x.rows {
		k = x.rows
	}
	if k <= 0 {
		return nil, 0, nil
	}
	covered := 0
	for _, seg := range x.segs {
		rows, rerr := seg.decodeRows(x.rows)
		if rerr != nil {
			return nil, decoded, rerr
		}
		vals, verr := seg.decodeVals()
		if verr != nil {
			return nil, decoded, verr
		}
		decoded++
		for i, r := range rows {
			entries = append(entries, Entry{Row: r, Value: vals[i]})
		}
		covered += seg.count
		if covered >= k {
			break
		}
	}
	sort.Slice(entries, func(a, b int) bool {
		return diag.RankLess(entries[a].Value, entries[b].Value, entries[a].Row, entries[b].Row)
	})
	return entries[:k], decoded, nil
}

// Op is a comparison predicate for threshold probes, mirroring the store's
// zone-map ops.
type Op int

const (
	// Gt selects values strictly greater than the bound.
	Gt Op = iota
	// Ge selects values greater than or equal to the bound.
	Ge
	// Lt selects values strictly less than the bound.
	Lt
	// Le selects values less than or equal to the bound.
	Le
)

func (o Op) String() string {
	switch o {
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Lt:
		return "<"
	}
	return "<="
}

func (o Op) matches(v, bound float32) bool {
	switch o {
	case Gt:
		return v > bound
	case Ge:
		return v >= bound
	case Lt:
		return v < bound
	default:
		return v <= bound
	}
}

// fullMatch reports whether every value in [min, max] matches. NaN bounds
// make every comparison false, so a NaN-bounded segment never full-matches.
func (o Op) fullMatch(min, max, bound float32) bool {
	switch o {
	case Gt:
		return min > bound
	case Ge:
		return min >= bound
	case Lt:
		return max < bound
	default:
		return max <= bound
	}
}

// canSkip reports whether no value in [min, max] can match.
func (o Op) canSkip(min, max, bound float32) bool {
	switch o {
	case Gt:
		return max <= bound
	case Ge:
		return max < bound
	case Lt:
		return min >= bound
	default:
		return min > bound
	}
}

// FilterRows returns the rows whose value matches `op bound`, in ascending
// row order. Segments are value-range partitioned along the priority
// order, so only the segments overlapping the predicate decode: a prefix
// for Gt/Ge, a suffix (before the NaN tail, which matches nothing) for
// Lt/Le; fully-covered segments decode row ids only, boundary segments
// also decode values and filter exactly. decoded reports segments decoded.
func (x *Index) FilterRows(op Op, bound float32) (rows []int, decoded int, err error) {
	collect := func(seg *segment) error {
		segRows, rerr := seg.decodeRows(x.rows)
		if rerr != nil {
			return rerr
		}
		decoded++
		if op.fullMatch(seg.min, seg.max, bound) {
			rows = append(rows, segRows...)
			return nil
		}
		vals, verr := seg.decodeVals()
		if verr != nil {
			return verr
		}
		for i, r := range segRows {
			if op.matches(vals[i], bound) {
				rows = append(rows, r)
			}
		}
		return nil
	}
	switch op {
	case Gt, Ge:
		for i := 0; i < x.nonNaN; i++ {
			seg := &x.segs[i]
			if op.canSkip(seg.min, seg.max, bound) {
				break // segments only get smaller from here
			}
			if err := collect(seg); err != nil {
				return nil, decoded, err
			}
		}
	default:
		for i := x.nonNaN - 1; i >= 0; i-- {
			seg := &x.segs[i]
			if op.canSkip(seg.min, seg.max, bound) {
				break // segments only get larger from here
			}
			if err := collect(seg); err != nil {
				return nil, decoded, err
			}
		}
	}
	sort.Ints(rows)
	return rows, decoded, nil
}

// BlockBound is one RowBlock's lower-bound distance to a KNN query point.
type BlockBound struct {
	Block int
	LB    float64
}

// PlanKNN orders RowBlocks by a lower bound on the Euclidean distance any
// row inside the block can have to query, computed from per-column
// per-block zones (colZones is indexed [column][block]; short or missing
// zone lists contribute nothing for the absent blocks).
//
// The bound is exact with respect to tensor.L2Dist's arithmetic: each
// column's gap g_j = fl(min_jb − q_j) (or fl(q_j − max_jb)) satisfies
// g_j ≤ |fl(v_j − q_j)| for every in-bounds value v_j by IEEE rounding
// monotonicity, and the squares are accumulated in the same column order
// with the same float64 operations — so LB ≤ computed distance holds
// exactly, and pruning a block whose LB exceeds the current k-th distance
// can never drop a row the full scan would rank (ties at the k-th distance
// included, since pruning requires strict excess). Columns whose zone is
// inverted (all-NaN or unknown) and NaN query coordinates contribute zero,
// keeping the bound conservative.
func PlanKNN(query []float32, colZones [][]Zone) []BlockBound {
	nBlocks := 0
	for _, zs := range colZones {
		if len(zs) > nBlocks {
			nBlocks = len(zs)
		}
	}
	out := make([]BlockBound, nBlocks)
	for b := range out {
		sum := 0.0
		for j, zs := range colZones {
			if b >= len(zs) || j >= len(query) {
				continue
			}
			z := zs[b]
			if z.Min > z.Max {
				continue // no usable bounds: cannot prune on this column
			}
			q := float64(query[j])
			var g float64
			switch {
			case q < float64(z.Min):
				g = float64(z.Min) - q
			case q > float64(z.Max):
				g = q - float64(z.Max)
			}
			sum += g * g
		}
		out[b] = BlockBound{Block: b, LB: math.Sqrt(sum)}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].LB != out[j].LB {
			return out[i].LB < out[j].LB
		}
		return out[i].Block < out[j].Block
	})
	return out
}
