package nindex

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"mistique/internal/obs"
)

func testColumn(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	for i := range out {
		switch rng.Intn(10) {
		case 0:
			out[i] = float32(math.NaN())
		case 1:
			out[i] = float32(math.Inf(1 - 2*rng.Intn(2)))
		default:
			out[i] = float32(rng.NormFloat64())
		}
	}
	return out
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 17, 300} {
		col := testColumn(n, int64(n)+1)
		x := Build(col, 16, 0xdeadbeef, Config{SegmentEntries: 11, HistogramBins: 5})
		enc := Encode("m\x00i\x00c", x)
		key, got, err := Decode(enc)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if key != "m\x00i\x00c" {
			t.Fatalf("n=%d: key %q", n, key)
		}
		if got.Sig() != x.Sig() || got.Rows() != x.Rows() || got.Segments() != x.Segments() || got.nonNaN != x.nonNaN {
			t.Fatalf("n=%d: header mismatch", n)
		}
		// Canonical: re-encoding the decoded index is byte-identical.
		if !bytes.Equal(Encode(key, got), enc) {
			t.Fatalf("n=%d: decode(encode) not canonical", n)
		}
		// Probes through the decoded copy match the original.
		a, _, err1 := x.TopK(n / 2)
		b, _, err2 := got.TopK(n / 2)
		if err1 != nil || err2 != nil || len(a) != len(b) {
			t.Fatalf("n=%d: topk through codec: %v %v", n, err1, err2)
		}
		for i := range a {
			if a[i].Row != b[i].Row || math.Float32bits(a[i].Value) != math.Float32bits(b[i].Value) {
				t.Fatalf("n=%d: topk entry %d diverges across codec", n, i)
			}
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	x := Build(testColumn(200, 9), 32, 7, Config{SegmentEntries: 16})
	enc := Encode("key", x)

	// Every truncation fails cleanly.
	for cut := 0; cut < len(enc); cut += 13 {
		if _, _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Every single-byte flip fails (CRC32-C catches all 1-byte errors).
	for i := 0; i < len(enc); i += 7 {
		mut := append([]byte{}, enc...)
		mut[i] ^= 0xff
		if _, _, err := Decode(mut); err == nil {
			t.Fatalf("byte flip at %d accepted", i)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("byte flip at %d: error %v not ErrCorrupt", i, err)
		}
	}
	// Trailing garbage fails even with the original CRC intact up front.
	if _, _, err := Decode(append(append([]byte{}, enc...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func managerForTest(t *testing.T, dir string) (*Manager, *obs.Registry) {
	t.Helper()
	reg := obs.New()
	m, err := NewManager(ManagerConfig{Dir: dir, Obs: reg, Index: Config{SegmentEntries: 16}})
	if err != nil {
		t.Fatal(err)
	}
	return m, reg
}

func fetchOf(col []float32, blockRows int) Fetch {
	return func() ([]float32, int, error) { return col, blockRows, nil }
}

func counterVal(reg *obs.Registry, name string) int64 {
	return reg.Snapshot().Counters[name]
}

func TestManagerBuildsPersistsAndReloads(t *testing.T) {
	dir := t.TempDir()
	col := testColumn(300, 4)
	key := Key{Model: "m", Intermediate: "i", Column: "c"}

	m1, reg1 := managerForTest(t, dir)
	got, err := m1.TopK(key, 11, 5, fetchOf(col, 32))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("topk returned %d entries", len(got))
	}
	if counterVal(reg1, "mistique_index_builds_total") != 1 {
		t.Fatal("first probe did not build")
	}
	// Second probe: cache hit, no rebuild.
	if _, err := m1.FilterRows(key, 11, Gt, 0, fetchOf(col, 32)); err != nil {
		t.Fatal(err)
	}
	if counterVal(reg1, "mistique_index_builds_total") != 1 || counterVal(reg1, "mistique_index_hits_total") == 0 {
		t.Fatal("second probe rebuilt instead of hitting the cache")
	}

	// A fresh manager over the same dir loads the persisted file: hit, not build.
	m2, reg2 := managerForTest(t, dir)
	failFetch := Fetch(func() ([]float32, int, error) { return nil, 0, errors.New("must not fetch") })
	got2, err := m2.TopK(key, 11, 5, failFetch)
	if err != nil {
		t.Fatalf("reload probe: %v", err)
	}
	for i := range got {
		if got[i] != got2[i] {
			t.Fatalf("reloaded answer diverges at %d", i)
		}
	}
	if counterVal(reg2, "mistique_index_builds_total") != 0 {
		t.Fatal("reload rebuilt despite valid file")
	}

	// A different signature rejects both cache and file and rebuilds.
	if _, err := m2.TopK(key, 12, 5, fetchOf(col, 32)); err != nil {
		t.Fatal(err)
	}
	if counterVal(reg2, "mistique_index_builds_total") != 1 {
		t.Fatal("stale signature did not force a rebuild")
	}
}

func TestManagerQuarantinesCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	col := testColumn(120, 8)
	key := Key{Model: "m", Intermediate: "i", Column: "c"}
	m1, _ := managerForTest(t, dir)
	if _, err := m1.TopK(key, 1, 3, fetchOf(col, 32)); err != nil {
		t.Fatal(err)
	}
	p := m1.path(key)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatalf("index file not published: %v", err)
	}
	data[len(data)/2] ^= 0x55
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh manager must quarantine the corrupt file and transparently rebuild.
	m2, reg2 := managerForTest(t, dir)
	got, err := m2.TopK(key, 1, 3, fetchOf(col, 32))
	if err != nil {
		t.Fatal(err)
	}
	want := Build(col, 32, 1, Config{SegmentEntries: 16})
	wantEntries, _, _ := want.TopK(3)
	for i := range got {
		if got[i] != wantEntries[i] {
			t.Fatalf("rebuilt answer diverges at %d", i)
		}
	}
	if counterVal(reg2, "mistique_index_quarantined_total") != 1 {
		t.Fatal("corrupt file not quarantined")
	}
	if counterVal(reg2, "mistique_index_builds_total") != 1 {
		t.Fatal("corrupt file not rebuilt")
	}
	if _, err := os.Stat(p + ".quarantine"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	// The rebuild re-published a clean file.
	if _, _, err := Decode(mustRead(t, p)); err != nil {
		t.Fatalf("re-published file invalid: %v", err)
	}
}

func mustRead(t *testing.T, p string) []byte {
	t.Helper()
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestManagerEvictsLRUUnderBudget(t *testing.T) {
	dir := t.TempDir()
	reg := obs.New()
	col := testColumn(2000, 3)
	one := Build(col, 64, 0, Config{})
	// Budget holds roughly two indexes.
	m, err := NewManager(ManagerConfig{Dir: dir, Obs: reg, MemBudgetBytes: 2*one.Bytes() + one.Bytes()/2})
	if err != nil {
		t.Fatal(err)
	}
	keys := []Key{{Model: "m", Column: "a"}, {Model: "m", Column: "b"}, {Model: "m", Column: "c"}}
	for _, k := range keys {
		if _, err := m.TopK(k, 1, 3, fetchOf(col, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if counterVal(reg, "mistique_index_evictions_total") == 0 {
		t.Fatal("budget never evicted")
	}
	if got := m.ResidentBytes(); got > 2*one.Bytes()+one.Bytes()/2 {
		t.Fatalf("resident %d over budget", got)
	}
	// The evicted index reloads from its file, not a rebuild.
	builds := counterVal(reg, "mistique_index_builds_total")
	for _, k := range keys {
		if _, err := m.TopK(k, 1, 3, fetchOf(col, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if counterVal(reg, "mistique_index_builds_total") != builds {
		t.Fatal("eviction forced a rebuild despite the persisted file")
	}
}

func TestManagerInvalidate(t *testing.T) {
	dir := t.TempDir()
	m, _ := managerForTest(t, dir)
	col := testColumn(50, 5)
	ka := Key{Model: "m1", Intermediate: "i", Column: "a"}
	kb := Key{Model: "m2", Intermediate: "i", Column: "b"}
	for _, k := range []Key{ka, kb} {
		if _, err := m.TopK(k, 1, 2, fetchOf(col, 16)); err != nil {
			t.Fatal(err)
		}
	}
	m.Invalidate(ka)
	if _, err := os.Stat(m.path(ka)); !os.IsNotExist(err) {
		t.Fatal("Invalidate left the file")
	}
	if m.ResidentBytes() <= 0 {
		t.Fatal("other model's index should stay resident")
	}
	m.InvalidateModel("m2")
	if m.ResidentBytes() != 0 {
		t.Fatal("InvalidateModel left resident bytes")
	}
	if _, err := os.Stat(m.path(kb)); !os.IsNotExist(err) {
		t.Fatal("InvalidateModel left m2's file")
	}
	// Probes after invalidation rebuild cleanly.
	if _, err := m.TopK(ka, 1, 2, fetchOf(col, 16)); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("rebuild did not re-publish")
	}
}

func TestManagerRebuildsOnProbeError(t *testing.T) {
	// A byte pattern that passes the CRC (we re-sign it) but carries a
	// structurally broken row list would be caught at decode; simulate the
	// rarer case — an in-memory index whose segment payload misbehaves — by
	// installing a hand-corrupted index directly.
	dir := t.TempDir()
	reg := obs.New()
	m, err := NewManager(ManagerConfig{Dir: dir, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	col := testColumn(100, 6)
	key := Key{Model: "m", Intermediate: "i", Column: "c"}
	bad := Build(col, 32, 9, Config{SegmentEntries: 16})
	bad.segs[0].rowsEnc = bad.segs[0].rowsEnc[:1] // torn payload
	e, _ := m.lookup(key, 9)
	m.install(key, e, bad)

	got, err := m.TopK(key, 9, 4, fetchOf(col, 32))
	if err != nil {
		t.Fatalf("probe with broken cached index: %v", err)
	}
	want, _, _ := Build(col, 32, 9, Config{}).TopK(4)
	for i := range got {
		if got[i].Row != want[i].Row {
			t.Fatalf("rebuilt probe row %d = %d, want %d", i, got[i].Row, want[i].Row)
		}
	}
	if counterVal(reg, "mistique_index_rebuilds_total") != 1 {
		t.Fatal("probe error did not count a rebuild")
	}
}
