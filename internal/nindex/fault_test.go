package nindex

import (
	"os"
	"strings"
	"testing"

	"mistique/internal/faultfs"
	"mistique/internal/obs"
)

// TestNIndexPublishCrashMatrix kills the simulated process at every point
// of the temp→write→fsync→close→rename→syncdir publish sequence and
// asserts the two invariants the index's design promises:
//
//  1. publish is best-effort — the probe that triggered the build still
//     answers, and answers correctly, during the crash;
//  2. after "reboot" (a fresh Manager over the same directory, clean FS),
//     whatever debris the crash left is either a fully valid file, loaded
//     and verified, or is ignored/quarantined and the index rebuilds —
//     the answer matches the oracle either way.
func TestNIndexPublishCrashMatrix(t *testing.T) {
	col := testColumn(400, 11)
	oracle := Build(col, 32, 1, Config{SegmentEntries: 16})
	want, _, err := oracle.TopK(7)
	if err != nil {
		t.Fatal(err)
	}

	faults := []faultfs.Fault{
		{Op: faultfs.OpCreate, PathContains: "nidx_", Crash: true},
		{Op: faultfs.OpWrite, PathContains: "nidx_", AfterBytes: 100, Crash: true},
		{Op: faultfs.OpWrite, PathContains: "nidx_", Crash: true},
		{Op: faultfs.OpSync, PathContains: "nidx_", Crash: true},
		{Op: faultfs.OpClose, PathContains: "nidx_", Crash: true},
		{Op: faultfs.OpRename, PathContains: "nidx_", Crash: true},
		{Op: faultfs.OpSyncDir, Crash: true},
	}
	for _, fault := range faults {
		t.Run(fault.Op.String(), func(t *testing.T) {
			dir := t.TempDir()
			inj := faultfs.NewInjector(nil)
			reg := obs.New()
			m, err := NewManager(ManagerConfig{
				Dir: dir, FS: inj, Obs: reg,
				Index: Config{SegmentEntries: 16},
			})
			if err != nil {
				t.Fatal(err)
			}
			key := Key{Model: "m", Intermediate: "i", Column: "c"}
			inj.Arm(fault)

			got, err := m.TopK(key, 1, 7, fetchOf(col, 32))
			if err != nil {
				t.Fatalf("probe failed during crashed publish: %v", err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("mid-crash answer diverges at %d", i)
				}
			}
			if !inj.Fired() {
				t.Fatalf("fault %v never fired; publish path changed?", fault.Op)
			}
			if counterVal(reg, "mistique_index_publish_errors_total") == 0 {
				t.Fatal("crashed publish not counted")
			}
			inj.Disarm()

			// Reboot: fresh manager, clean FS, same directory full of debris.
			// Classify the debris first — only a fully valid final file (the
			// rename made it) may be trusted; everything else forces a rebuild.
			m2, reg2 := managerForTest(t, dir)
			validSurvivor := false
			if data, err := os.ReadFile(m2.path(key)); err == nil {
				if storedKey, _, derr := Decode(data); derr == nil && storedKey == key.fileKey() {
					validSurvivor = true
				}
			}
			got2, err := m2.TopK(key, 1, 7, fetchOf(col, 32))
			if err != nil {
				t.Fatalf("post-crash probe: %v", err)
			}
			for i := range want {
				if got2[i] != want[i] {
					t.Fatalf("post-crash answer diverges at %d", i)
				}
			}
			builds := counterVal(reg2, "mistique_index_builds_total")
			if validSurvivor && builds != 0 {
				t.Fatal("valid file survived the crash but the manager rebuilt anyway")
			}
			if !validSurvivor && builds == 0 {
				t.Fatal("no valid file survived the crash yet nothing was rebuilt")
			}
			// The probe (served or rebuilt) leaves a decodable published file.
			if storedKey, _, derr := Decode(mustRead(t, m2.path(key))); derr != nil || storedKey != key.fileKey() {
				t.Fatalf("re-published file invalid: key=%q err=%v", storedKey, derr)
			}
		})
	}
}

// TestNIndexPublishErrorKeepsServing covers the non-crash flavor: a plain
// I/O error (ENOSPC-style) in any publish step must not surface to the
// probe, and the next manager rebuilds from data.
func TestNIndexPublishErrorKeepsServing(t *testing.T) {
	col := testColumn(150, 13)
	for _, op := range []faultfs.Op{faultfs.OpCreate, faultfs.OpWrite, faultfs.OpSync, faultfs.OpRename} {
		dir := t.TempDir()
		inj := faultfs.NewInjector(nil)
		reg := obs.New()
		m, err := NewManager(ManagerConfig{Dir: dir, FS: inj, Obs: reg, Index: Config{SegmentEntries: 16}})
		if err != nil {
			t.Fatal(err)
		}
		inj.Arm(faultfs.Fault{Op: op, PathContains: "nidx_"})
		key := Key{Model: "m", Intermediate: "i", Column: "c"}
		if _, err := m.TopK(key, 1, 5, fetchOf(col, 32)); err != nil {
			t.Fatalf("op %v: probe failed on publish error: %v", op, err)
		}
		if !inj.Fired() {
			t.Fatalf("op %v never fired", op)
		}
		if counterVal(reg, "mistique_index_publish_errors_total") != 1 {
			t.Fatalf("op %v: publish error not counted", op)
		}
		// Failed publishes must not leave temp debris behind (the non-crash
		// error path cleans up after itself).
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if strings.Contains(e.Name(), ".tmp") && op != faultfs.OpRename {
				t.Fatalf("op %v left temp debris %q", op, e.Name())
			}
		}
	}
}
