package nindex

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"

	"mistique/internal/faultfs"
	"mistique/internal/obs"
)

// Key names one indexed column.
type Key struct {
	Model        string
	Intermediate string
	Column       string
}

// fileKey is the unambiguous identity stamped into the persisted file
// (NUL-separated so "a/b"+"c" and "a"+"b/c" cannot collide).
func (k Key) fileKey() string {
	return k.Model + "\x00" + k.Intermediate + "\x00" + k.Column
}

func (k Key) String() string {
	return k.Model + "/" + k.Intermediate + "/" + k.Column
}

// Fetch loads a column's full values (and the RowBlock height) for an
// index build. It runs outside the manager's locks, so it may do store
// reads, heals, and retries.
type Fetch func() (values []float32, blockRows int, err error)

// ManagerConfig configures a Manager.
type ManagerConfig struct {
	// Dir is where index files live (created on demand).
	Dir string
	// FS is the write-side filesystem (faultfs.OS() when nil); reads use
	// plain os calls, mirroring the column store.
	FS faultfs.FS
	// MemBudgetBytes caps resident index bytes; least-recently-used
	// indexes are dropped from memory (their files remain, so the next
	// probe reloads instead of rebuilding). Default 64 MiB.
	MemBudgetBytes int64
	// Index holds the per-index build knobs.
	Index Config
	// Obs receives the manager's instruments (nil disables metrics).
	Obs *obs.Registry
}

// Manager owns the lazily-built per-column indexes: an in-memory LRU cache
// over persisted MQNI files. Every cached or loaded index is verified
// against the column's current physical signature — a mismatch (heal,
// re-log, compaction) triggers a rebuild; a corrupt file is quarantined
// and rebuilt. Publish failures are absorbed: the index still serves from
// memory and persists on a later build.
type Manager struct {
	cfg ManagerConfig
	fs  faultfs.FS

	mu      sync.Mutex
	entries map[Key]*entry
	bytes   int64
	clock   uint64

	builds      *obs.Counter
	hits        *obs.Counter
	partial     *obs.Counter
	rebuilds    *obs.Counter
	evictions   *obs.Counter
	quarantines *obs.Counter
	publishErrs *obs.Counter
	bytesGauge  *obs.Gauge
	buildHist   *obs.Histogram
	probeHist   *obs.Histogram
}

// entry is the cache slot of one column. buildMu serializes expensive
// work (disk load, fetch+build) per key; idx and lastUse are guarded by
// Manager.mu so probes and eviction never race.
type entry struct {
	buildMu sync.Mutex
	idx     *Index
	lastUse uint64
}

// NewManager creates the index directory and wires the instruments.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if cfg.MemBudgetBytes <= 0 {
		cfg.MemBudgetBytes = 64 << 20
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("nindex: %w", err)
	}
	fs := cfg.FS
	if fs == nil {
		fs = faultfs.OS()
	}
	r := cfg.Obs
	return &Manager{
		cfg:         cfg,
		fs:          fs,
		entries:     make(map[Key]*entry),
		builds:      r.Counter("mistique_index_builds_total", "Neuron index builds from column data."),
		hits:        r.Counter("mistique_index_hits_total", "Probes answered by a cached or loaded index."),
		partial:     r.Counter("mistique_index_partial_scans_total", "Probes that decoded only a subset of index segments."),
		rebuilds:    r.Counter("mistique_index_rebuilds_total", "Indexes rebuilt after a failed probe."),
		evictions:   r.Counter("mistique_index_evictions_total", "Indexes dropped from memory by the LRU budget."),
		quarantines: r.Counter("mistique_index_quarantined_total", "Corrupt index files quarantined."),
		publishErrs: r.Counter("mistique_index_publish_errors_total", "Best-effort index persists that failed."),
		bytesGauge:  r.Gauge("mistique_index_bytes", "Resident bytes across cached neuron indexes."),
		buildHist:   r.Histogram("mistique_index_build_seconds", "Neuron index build latency (fetch + construct)."),
		probeHist:   r.Histogram("mistique_index_probe_seconds", "Neuron index probe latency."),
	}, nil
}

// path returns the index file for a key: hash-named (keys hold arbitrary
// column strings, unfit for filenames), with the real key stored — and
// verified — inside the file.
func (m *Manager) path(key Key) string {
	h := fnv.New64a()
	h.Write([]byte(key.fileKey()))
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], h.Sum64())
	return filepath.Join(m.cfg.Dir, fmt.Sprintf("nidx_%016x.mqni", b))
}

// Get returns the index for key at signature sig, from (in preference
// order) memory, disk, or a fresh build via fetch. Stale copies are
// discarded, corrupt files quarantined.
func (m *Manager) Get(key Key, sig uint32, fetch Fetch) (*Index, error) {
	e, idx := m.lookup(key, sig)
	if idx != nil {
		m.hits.Inc()
		return idx, nil
	}

	e.buildMu.Lock()
	defer e.buildMu.Unlock()
	// A concurrent probe may have built while this one waited.
	if _, idx = m.lookup(key, sig); idx != nil {
		m.hits.Inc()
		return idx, nil
	}
	if idx = m.loadFromDisk(key, sig); idx != nil {
		m.hits.Inc()
		m.install(key, e, idx)
		return idx, nil
	}

	stop := m.buildHist.Time()
	values, blockRows, err := fetch()
	if err != nil {
		stop()
		return nil, err
	}
	idx = Build(values, blockRows, sig, m.cfg.Index)
	stop()
	m.builds.Inc()
	m.publish(key, idx)
	m.install(key, e, idx)
	return idx, nil
}

// lookup get-or-creates the cache slot and returns the cached index when
// it matches sig (touching the LRU stamp). A cached index built against a
// different signature is dropped on the spot.
func (m *Manager) lookup(key Key, sig uint32) (*entry, *Index) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[key]
	if !ok {
		e = &entry{}
		m.entries[key] = e
	}
	if e.idx != nil && e.idx.Sig() != sig {
		m.bytes -= e.idx.Bytes()
		e.idx = nil
		m.bytesGauge.Set(m.bytes)
	}
	if e.idx != nil {
		m.clock++
		e.lastUse = m.clock
		return e, e.idx
	}
	return e, nil
}

// install caches idx under key and enforces the memory budget by evicting
// the least-recently-used other entries (files remain on disk).
func (m *Manager) install(key Key, e *entry, idx *Index) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.entries[key] != e {
		// An Invalidate raced this build and detached the slot (a heal
		// re-materialized the column mid-fetch, say). The caller still gets
		// idx for this probe, but caching it would leak its bytes out of
		// the eviction loop's reach — let the next probe rebuild cleanly.
		return
	}
	if e.idx != nil {
		m.bytes -= e.idx.Bytes()
	}
	e.idx = idx
	m.clock++
	e.lastUse = m.clock
	m.bytes += idx.Bytes()
	for m.bytes > m.cfg.MemBudgetBytes {
		var victim *entry
		for _, cand := range m.entries {
			if cand == e || cand.idx == nil {
				continue
			}
			if victim == nil || cand.lastUse < victim.lastUse {
				victim = cand
			}
		}
		if victim == nil {
			break // only the just-installed index is resident
		}
		m.bytes -= victim.idx.Bytes()
		victim.idx = nil
		m.evictions.Inc()
	}
	m.bytesGauge.Set(m.bytes)
}

// loadFromDisk reads and verifies the persisted index. Missing file or
// stale signature return nil (rebuild); a file that fails validation or
// names a different column is quarantined.
func (m *Manager) loadFromDisk(key Key, sig uint32) *Index {
	p := m.path(key)
	data, err := os.ReadFile(p)
	if err != nil {
		return nil
	}
	storedKey, idx, err := Decode(data)
	if err != nil || storedKey != key.fileKey() {
		m.quarantine(p)
		return nil
	}
	if idx.Sig() != sig {
		return nil
	}
	return idx
}

// quarantine moves a corrupt index file aside (removing it when even the
// rename fails) so it is never re-read, while keeping the evidence.
func (m *Manager) quarantine(p string) {
	m.quarantines.Inc()
	if err := m.fs.Rename(p, p+".quarantine"); err != nil {
		m.fs.Remove(p)
	}
	m.fs.SyncDir(filepath.Dir(p))
}

// publish persists idx under the store's temp→fsync→rename→syncdir
// discipline. Failures are absorbed (counted): the in-memory index is
// authoritative and a later build retries the persist.
func (m *Manager) publish(key Key, idx *Index) {
	if err := m.writeFile(m.path(key), Encode(key.fileKey(), idx)); err != nil {
		m.publishErrs.Inc()
	}
}

func (m *Manager) writeFile(path string, data []byte) error {
	dir, base := filepath.Dir(path), filepath.Base(path)
	f, err := m.fs.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func() { m.fs.Remove(tmp) }
	if _, err := f.Write(data); err != nil {
		f.Close()
		cleanup()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		cleanup()
		return err
	}
	if err := f.Close(); err != nil {
		cleanup()
		return err
	}
	if err := m.fs.Rename(tmp, path); err != nil {
		cleanup()
		return err
	}
	return m.fs.SyncDir(dir)
}

// Invalidate drops a column's index from memory and disk. Call after any
// operation that re-materializes the column (heal, re-log); even without
// it the signature check would reject the stale copy.
func (m *Manager) Invalidate(key Key) {
	m.mu.Lock()
	if e, ok := m.entries[key]; ok {
		if e.idx != nil {
			m.bytes -= e.idx.Bytes()
			e.idx = nil
			m.bytesGauge.Set(m.bytes)
		}
		delete(m.entries, key)
	}
	m.mu.Unlock()
	m.fs.Remove(m.path(key))
}

// InvalidateModel drops every index of a model from memory, and sweeps the
// index directory for the model's files (best-effort hygiene — any file
// missed here is rejected later by its stale signature).
func (m *Manager) InvalidateModel(model string) {
	m.mu.Lock()
	for key, e := range m.entries {
		if key.Model != model {
			continue
		}
		if e.idx != nil {
			m.bytes -= e.idx.Bytes()
			e.idx = nil
		}
		delete(m.entries, key)
	}
	m.bytesGauge.Set(m.bytes)
	m.mu.Unlock()

	entries, err := os.ReadDir(m.cfg.Dir)
	if err != nil {
		return
	}
	prefix := model + "\x00"
	for _, de := range entries {
		if de.IsDir() || filepath.Ext(de.Name()) != ".mqni" {
			continue
		}
		p := filepath.Join(m.cfg.Dir, de.Name())
		data, err := os.ReadFile(p)
		if err != nil {
			continue
		}
		if storedKey, _, err := Decode(data); err == nil && len(storedKey) >= len(prefix) && storedKey[:len(prefix)] == prefix {
			m.fs.Remove(p)
		}
	}
}

// ResidentBytes reports the bytes of in-memory indexes (for tests).
func (m *Manager) ResidentBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytes
}

// TopK probes the column's index for its k highest-activation rows,
// building the index on first use. A probe error (a corrupted index that
// slipped past the checksum) invalidates and rebuilds once.
func (m *Manager) TopK(key Key, sig uint32, k int, fetch Fetch) ([]Entry, error) {
	var out []Entry
	err := m.probe(key, sig, fetch, func(x *Index) (int, error) {
		entries, decoded, err := x.TopK(k)
		if err == nil {
			out = entries
		}
		if decoded < x.Segments() {
			m.partial.Inc()
		}
		return decoded, err
	})
	return out, err
}

// FilterRows probes the column's index for the rows matching `op bound`.
func (m *Manager) FilterRows(key Key, sig uint32, op Op, bound float32, fetch Fetch) ([]int, error) {
	var out []int
	err := m.probe(key, sig, fetch, func(x *Index) (int, error) {
		rows, decoded, err := x.FilterRows(op, bound)
		if err == nil {
			out = rows
		}
		if decoded < x.Segments() {
			m.partial.Inc()
		}
		return decoded, err
	})
	return out, err
}

func (m *Manager) probe(key Key, sig uint32, fetch Fetch, run func(*Index) (int, error)) error {
	defer m.probeHist.Time()()
	x, err := m.Get(key, sig, fetch)
	if err != nil {
		return err
	}
	if _, err = run(x); err == nil {
		return nil
	}
	// The index lied structurally: throw it away and rebuild from data.
	m.rebuilds.Inc()
	m.Invalidate(key)
	x, gerr := m.Get(key, sig, fetch)
	if gerr != nil {
		return gerr
	}
	if _, rerr := run(x); rerr != nil {
		return rerr
	}
	return nil
}
