package nindex

import (
	"bytes"
	"math"
	"testing"
)

// FuzzNIndexFile hardens the MQNI decoder: arbitrary bytes must never
// panic or allocate unboundedly, any input that decodes must re-encode to
// a canonical form that is a codec fixed point, and probes through a
// decoded index must never panic (structural errors are fine — they route
// to quarantine + rebuild in production).
func FuzzNIndexFile(f *testing.F) {
	// Seed corpus: valid files of several shapes, so mutation starts from
	// deep inside the format rather than failing at the magic bytes.
	shapes := []struct {
		n         int
		blockRows int
		cfg       Config
	}{
		{0, 16, Config{}},
		{1, 16, Config{SegmentEntries: 4, HistogramBins: 2}},
		{37, 8, Config{SegmentEntries: 5, HistogramBins: 4}},
		{200, 64, Config{SegmentEntries: 32, HistogramBins: 16}},
	}
	for i, s := range shapes {
		col := testColumn(s.n, int64(i)+100)
		f.Add(Encode("m\x00i\x00c", Build(col, s.blockRows, uint32(i), s.cfg)))
	}
	// All-NaN column: only nan segments, inverted zones.
	nan := float32(math.NaN())
	f.Add(Encode("k", Build([]float32{nan, nan, nan}, 2, 5, Config{SegmentEntries: 2})))
	// Tiny hand-rolled corruptions.
	f.Add([]byte{})
	f.Add([]byte("MQNI"))
	f.Add([]byte("MQNI\x01\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		key, x, err := Decode(data)
		if err != nil {
			return
		}
		// Decoded OK: re-encoding must be a fixed point of the codec. The
		// original bytes may use non-minimal varints, so compare the
		// canonical forms, not data itself.
		enc1 := Encode(key, x)
		key2, x2, err := Decode(enc1)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if key2 != key {
			t.Fatalf("key changed across re-encode: %q -> %q", key, key2)
		}
		if !bytes.Equal(Encode(key2, x2), enc1) {
			t.Fatal("canonical encoding is not a fixed point")
		}
		// Probes must not panic whatever the payload claims.
		if _, _, err := x.TopK(3); err == nil {
			x.TopK(x.Rows() + 1)
		}
		for _, op := range []Op{Gt, Ge, Lt, Le} {
			x.FilterRows(op, 0.5)
		}
	})
}
