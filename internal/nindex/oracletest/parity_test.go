package oracletest

import (
	"math"
	"math/rand"
	"testing"

	"mistique/internal/nindex"
	"mistique/internal/tensor"
)

// f32eq compares values bit-wise so NaN == NaN and -0 != +0 distinctions
// cannot hide a divergence (both sides read the same stored values, so
// exact bits are the honest comparison).
func f32eq(a, b float32) bool {
	return math.Float32bits(a) == math.Float32bits(b)
}

func sameEntries(t *testing.T, label string, got, want []nindex.Entry) bool {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d entries, oracle has %d", label, len(got), len(want))
		return false
	}
	for i := range got {
		if got[i].Row != want[i].Row || !f32eq(got[i].Value, want[i].Value) {
			t.Errorf("%s: entry %d = {%d %v}, oracle {%d %v}", label, i, got[i].Row, got[i].Value, want[i].Row, want[i].Value)
			return false
		}
	}
	return true
}

func sameRows(t *testing.T, label string, got, want []int) bool {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d rows, oracle has %d", label, len(got), len(want))
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("%s: row %d = %d, oracle %d", label, i, got[i], want[i])
			return false
		}
	}
	return true
}

// TestIndexScanParity is the differential harness's core sweep: every
// (column shape × size × seed × index layout) instance is probed with
// every TOPK and FilterRows query shape, against both the freshly built
// index and its decode(encode(·)) round-trip, and each answer must equal
// the naive full-scan oracle exactly. Well over 1000 randomized probes
// run per invocation; any count mismatch, row mismatch, or value-bit
// mismatch fails.
func TestIndexScanParity(t *testing.T) {
	sizes := []int{0, 1, 5, 33, 100, 257}
	configs := []nindex.Config{
		{SegmentEntries: 7, HistogramBins: 8}, // many segments: every walk boundary exercised
		{SegmentEntries: 64, HistogramBins: 16},
	}
	blockRows := []int{16, 64}
	probes := 0
	for _, kind := range Kinds {
		for _, n := range sizes {
			for seed := int64(1); seed <= 3; seed++ {
				rng := rand.New(rand.NewSource(seed*1000 + int64(n)))
				col := Column(rng, kind, n)
				for ci, cfg := range configs {
					x := nindex.Build(col, blockRows[ci%len(blockRows)], uint32(seed), cfg)
					// Probe the persisted form too: parity must survive the codec.
					_, rx, err := nindex.Decode(nindex.Encode("k", x))
					if err != nil {
						t.Fatalf("%s n=%d seed=%d: round-trip decode: %v", kind, n, seed, err)
					}
					for _, idx := range []*nindex.Index{x, rx} {
						ks := []int{0, 1, 2, n - 1, n, n + 1, rng.Intn(n + 2)}
						for _, k := range ks {
							got, _, err := idx.TopK(k)
							if err != nil {
								t.Fatalf("%s n=%d seed=%d k=%d: %v", kind, n, seed, k, err)
							}
							want := TopK(col, k)
							if got == nil {
								got = []nindex.Entry{}
							}
							sameEntries(t, probeLabel(kind, n, seed, "topk", k), got, want)
							probes++
						}
						for _, op := range []nindex.Op{nindex.Gt, nindex.Ge, nindex.Lt, nindex.Le} {
							for _, bound := range Bounds(rng, col) {
								got, _, err := idx.FilterRows(op, bound)
								if err != nil {
									t.Fatalf("%s n=%d seed=%d %v %v: %v", kind, n, seed, op, bound, err)
								}
								if got == nil {
									got = []int{}
								}
								sameRows(t, probeLabel(kind, n, seed, op.String(), int(math.Float32bits(bound))), got, FilterRows(col, op, bound))
								probes++
							}
						}
					}
				}
			}
		}
	}
	if probes < 1000 {
		t.Fatalf("parity sweep ran only %d probes, want >= 1000", probes)
	}
	t.Logf("parity sweep: %d probes, zero divergences", probes)
}

func probeLabel(kind ColumnKind, n int, seed int64, op string, k int) string {
	return string(kind) + "/" + op + "/" + itoa(n) + "/" + itoa(int(seed)) + "/" + itoa(k)
}

func itoa(v int) string {
	if v < 0 {
		return "-" + itoa(-v)
	}
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + string(rune('0'+v%10))
}

// TestKNNPruningParity holds the engine's block-pruned KNN equal to the
// naive full scan: for random matrices (special values included), random
// query rows and synthetic query points, PrunedKNN must return exactly
// diag.KNN's ranking — i.e. the zone lower bound never prunes a block
// holding a true neighbor, ties at the k-th distance included.
func TestKNNPruningParity(t *testing.T) {
	probes := 0
	pruned := 0
	for seed := int64(1); seed <= 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rows := 8 + rng.Intn(120)
		cols := 1 + rng.Intn(5)
		blockRows := []int{8, 16, 64}[rng.Intn(3)]
		x := tensor.NewDense(rows, cols)
		for j := 0; j < cols; j++ {
			kind := Kinds[rng.Intn(len(Kinds))]
			x.SetCol(j, Column(rng, kind, rows))
		}
		for probe := 0; probe < 8; probe++ {
			self := rng.Intn(rows)
			query := x.Row(self)
			if probe%3 == 2 {
				// A query point that is not a stored row.
				q := make([]float32, cols)
				for j := range q {
					q[j] = float32(rng.NormFloat64() * 10)
				}
				query, self = q, -1
			}
			for _, k := range []int{0, 1, 3, rows - 1, rows, rows + 1} {
				got, blocksRead := PrunedKNN(x, query, k, self, blockRows)
				want := KNN(x, query, k, self)
				if !sameRows(t, "knn", got, want) {
					t.Fatalf("seed=%d rows=%d cols=%d blockRows=%d self=%d k=%d", seed, rows, cols, blockRows, self, k)
				}
				if total := (rows + blockRows - 1) / blockRows; blocksRead < total {
					pruned++
				}
				probes++
			}
		}
	}
	if probes < 500 {
		t.Fatalf("knn sweep ran only %d probes", probes)
	}
	if pruned == 0 {
		t.Error("pruning never skipped a block across the whole sweep; bound too loose or plan ignored")
	}
	t.Logf("knn sweep: %d probes, %d with real pruning, zero divergences", probes, pruned)
}

// TestTopKDecodesPrefixOnly pins the index's point: a small-k probe must
// not decode the whole priority list.
func TestTopKDecodesPrefixOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	col := Column(rng, Uniform, 10_000)
	x := nindex.Build(col, 64, 0, nindex.Config{SegmentEntries: 64})
	_, decoded, err := x.TopK(10)
	if err != nil {
		t.Fatal(err)
	}
	if decoded != 1 {
		t.Fatalf("TopK(10) decoded %d segments, want 1 (of %d)", decoded, x.Segments())
	}
	rows, decoded, err := x.FilterRows(nindex.Gt, 99.99)
	if err != nil {
		t.Fatal(err)
	}
	if decoded >= x.Segments()/2 {
		t.Fatalf("selective filter decoded %d of %d segments", decoded, x.Segments())
	}
	want := FilterRows(col, nindex.Gt, 99.99)
	if got := rows; len(got) != len(want) {
		t.Fatalf("filter found %d rows, oracle %d", len(got), len(want))
	}
}
