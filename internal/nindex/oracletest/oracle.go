// Package oracletest is the differential-testing harness for the
// neuron-centric indexes: every indexed query shape (TOPK, FilterRows,
// block-pruned KNN) is replayed against a naive full-scan oracle built on
// internal/diag's pinned comparators, over randomized columns that include
// the adversarial shapes — NaN and ±Inf, constant columns, duplicate
// values, all-equal ties, signed zeros — and the results are asserted
// byte-identical, not approximately equal. Tie-breaking is pinned to
// ascending row id on both sides, so any divergence is a real bug, never
// flake.
package oracletest

import (
	"math"
	"math/rand"
	"sort"

	"mistique/internal/diag"
	"mistique/internal/nindex"
	"mistique/internal/tensor"
)

// ColumnKind names one generator shape.
type ColumnKind string

const (
	// Uniform draws i.i.d. uniform values.
	Uniform ColumnKind = "uniform"
	// Duplicates draws from a tiny value set, forcing heavy ties.
	Duplicates ColumnKind = "duplicates"
	// Constant repeats one value (an all-equal column: every rank and
	// every boundary predicate is a tie).
	Constant ColumnKind = "constant"
	// Special mixes NaN, ±Inf, ±0 and duplicates into uniform noise.
	Special ColumnKind = "special"
	// Sorted is ascending (segment ranges collapse to disjoint runs).
	Sorted ColumnKind = "sorted"
	// Reversed is descending (priority order equals row order).
	Reversed ColumnKind = "reversed"
)

// Kinds lists every generator shape, for table-driven sweeps.
var Kinds = []ColumnKind{Uniform, Duplicates, Constant, Special, Sorted, Reversed}

// Column generates n values of the given shape from rng.
func Column(rng *rand.Rand, kind ColumnKind, n int) []float32 {
	out := make([]float32, n)
	switch kind {
	case Duplicates:
		vals := []float32{-2, 0, 0.5, 3}
		for i := range out {
			out[i] = vals[rng.Intn(len(vals))]
		}
	case Constant:
		v := float32(rng.NormFloat64())
		for i := range out {
			out[i] = v
		}
	case Special:
		specials := []float32{
			float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)),
			0, float32(math.Copysign(0, -1)), 1, 1, -1,
		}
		for i := range out {
			if rng.Intn(3) == 0 {
				out[i] = specials[rng.Intn(len(specials))]
			} else {
				out[i] = float32(rng.NormFloat64())
			}
		}
	case Sorted:
		v := float32(-100)
		for i := range out {
			v += float32(rng.Float64())
			out[i] = v
		}
	case Reversed:
		v := float32(100)
		for i := range out {
			v -= float32(rng.Float64())
			out[i] = v
		}
	default:
		for i := range out {
			out[i] = float32(rng.Float64()*200 - 100)
		}
	}
	return out
}

// Bounds returns predicate bounds worth probing against col: exact stored
// values (duplicate-boundary ties), midpoints, the extremes, ±Inf, NaN
// (which must match nothing), and zero.
func Bounds(rng *rand.Rand, col []float32) []float32 {
	bounds := []float32{
		float32(math.Inf(1)), float32(math.Inf(-1)), float32(math.NaN()), 0,
	}
	finite := make([]float32, 0, len(col))
	for _, v := range col {
		if !math.IsNaN(float64(v)) && !math.IsInf(float64(v), 0) {
			finite = append(finite, v)
		}
	}
	if len(finite) > 0 {
		for i := 0; i < 3; i++ {
			bounds = append(bounds, finite[rng.Intn(len(finite))]) // exact hit
		}
		a, b := finite[rng.Intn(len(finite))], finite[rng.Intn(len(finite))]
		bounds = append(bounds, (a+b)/2)
	}
	return bounds
}

// TopK is the naive oracle: rank the whole column with diag.TopK (value
// descending, NaN last, ascending row id on ties) and keep k.
func TopK(col []float32, k int) []nindex.Entry {
	ranked := diag.TopK(col, k)
	out := make([]nindex.Entry, len(ranked))
	for i, r := range ranked {
		out[i] = nindex.Entry{Row: r, Value: col[r]}
	}
	return out
}

// FilterRows is the naive oracle: test every value, ascending row order.
// NaN matches no predicate.
func FilterRows(col []float32, op nindex.Op, bound float32) []int {
	out := []int{}
	for i, v := range col {
		var match bool
		switch op {
		case nindex.Gt:
			match = v > bound
		case nindex.Ge:
			match = v >= bound
		case nindex.Lt:
			match = v < bound
		default:
			match = v <= bound
		}
		if match {
			out = append(out, i)
		}
	}
	return out
}

// KNN is the naive oracle: diag.KNN over the full matrix.
func KNN(x *tensor.Dense, query []float32, k, selfIdx int) []int {
	return diag.KNN(x, query, k, selfIdx)
}

// PrunedKNN answers KNN the way the engine does: blocks ordered by
// nindex.PlanKNN's lower bound, scanned until the k-th candidate distance
// strictly beats every remaining bound, candidates ranked by
// diag.DistLess. blockRows is the RowBlock height. The parity suite holds
// this equal to the naive KNN oracle on every input, which is exactly the
// claim that the lower bound never prunes a contributing block.
func PrunedKNN(x *tensor.Dense, query []float32, k, selfIdx, blockRows int) (rows []int, blocksRead int) {
	colZones := make([][]nindex.Zone, x.Cols)
	for j := 0; j < x.Cols; j++ {
		colZones[j] = zonesOf(x.Col(j), blockRows)
	}
	plan := nindex.PlanKNN(query, colZones)
	if k < 0 {
		k = 0
	}
	type cand struct {
		row  int
		dist float64
	}
	var cands []cand
	kth := math.NaN()
	for _, bb := range plan {
		if len(cands) >= k && k > 0 && bb.LB > kth {
			break
		}
		lo := bb.Block * blockRows
		hi := lo + blockRows
		if hi > x.Rows {
			hi = x.Rows
		}
		blocksRead++
		for r := lo; r < hi; r++ {
			if r == selfIdx {
				continue
			}
			cands = append(cands, cand{row: r, dist: tensor.L2Dist(x.Row(r), query)})
		}
		sort.Slice(cands, func(a, b int) bool {
			return diag.DistLess(cands[a].dist, cands[b].dist, cands[a].row, cands[b].row)
		})
		if len(cands) > k {
			cands = cands[:k]
		}
		if len(cands) >= k && k > 0 {
			kth = cands[k-1].dist
		}
	}
	rows = make([]int, 0, len(cands))
	for _, c := range cands {
		rows = append(rows, c.row)
	}
	return rows, blocksRead
}

// zonesOf mirrors the store's zone maps (min/max over a block; NaN
// excluded by comparison semantics, all-NaN blocks stay inverted).
func zonesOf(col []float32, blockRows int) []nindex.Zone {
	var zs []nindex.Zone
	for lo := 0; lo < len(col); lo += blockRows {
		hi := lo + blockRows
		if hi > len(col) {
			hi = len(col)
		}
		z := nindex.Zone{Min: float32(math.Inf(1)), Max: float32(math.Inf(-1)), Count: hi - lo}
		for _, v := range col[lo:hi] {
			if v < z.Min {
				z.Min = v
			}
			if v > z.Max {
				z.Max = v
			}
		}
		zs = append(zs, z)
	}
	return zs
}
