package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// Registry is a named collection of instruments. Lookups get-or-create, so
// independently wired components (engine, store, catalog) can share one
// registry without coordinating registration order. A nil *Registry hands
// out nil (no-op) instruments, which is how metrics are disabled.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		help:     make(map[string]string),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
		r.help[name] = help
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
		r.help[name] = help
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
		r.help[name] = help
	}
	return h
}

// Bucket is one cumulative histogram bucket (Prometheus "le" semantics).
type Bucket struct {
	LE    float64
	Count int64
}

// HistogramSnapshot is the frozen form of a Histogram. The JSON surface
// carries count/sum/mean and the latency quantiles; the full cumulative
// bucket vector is kept for Prometheus exposition but omitted from JSON to
// keep `mistique stats` readable.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Mean    float64  `json:"mean"`
	P50     float64  `json:"p50"`
	P95     float64  `json:"p95"`
	P99     float64  `json:"p99"`
	Buckets []Bucket `json:"-"`
}

// Snapshot is a point-in-time copy of every metric in a registry. Maps
// marshal to JSON with sorted keys, so the JSON form is stable. Callers
// may add entries before exposition (the engine folds the column store's
// Stats fields in this way).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	// Help carries metric descriptions for Prometheus # HELP lines.
	Help map[string]string `json:"-"`
}

// Snapshot freezes the registry. Safe to call concurrently with updates;
// each instrument is read atomically (histogram count/sum/buckets may be
// mutually off by in-flight observations, which exposition tolerates).
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
		Help:       make(map[string]string),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	for name, help := range r.help {
		s.Help[name] = help
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters, gauges, then histograms with
// cumulative le-buckets, _sum and _count series.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		writeHeader(&b, n, "counter", s.Help[n])
		fmt.Fprintf(&b, "%s %d\n", n, s.Counters[n])
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		writeHeader(&b, n, "gauge", s.Help[n])
		fmt.Fprintf(&b, "%s %d\n", n, s.Gauges[n])
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		writeHeader(&b, n, "histogram", s.Help[n])
		for _, bk := range h.Buckets {
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", n, formatLE(bk.LE), bk.Count)
		}
		fmt.Fprintf(&b, "%s_sum %g\n", n, h.Sum)
		fmt.Fprintf(&b, "%s_count %d\n", n, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHeader(b *strings.Builder, name, typ, help string) {
	if help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
}

func formatLE(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", v)
}
