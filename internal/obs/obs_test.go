package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(1.0)
	h.ObserveSince(time.Now())
	h.Time()()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "") != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	// A nil registry still snapshots to an empty (usable) snapshot.
	if s := r.Snapshot(); len(s.Counters) != 0 || s.Counters == nil {
		t.Fatalf("nil registry snapshot %+v", s)
	}
}

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("mq_events_total", "events")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter %d", c.Value())
	}
	if r.Counter("mq_events_total", "events") != c {
		t.Fatal("get-or-create returned a different counter")
	}
	g := r.Gauge("mq_level", "level")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge %d", g.Value())
	}
}

func TestBucketIndexBounds(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0},
		{1e-9, 0},
		{histMin, 0},
		{histMin * 1.5, 1},
		{histMin * 2, 1},
		{histMin * 2.01, 2},
		{math.Inf(1), histBuckets},
		{1e12, histBuckets},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%g) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every bucket's bound must fall in its own bucket (inclusive upper).
	for i := 0; i < histBuckets; i++ {
		if got := bucketIndex(bucketBound(i)); got != i {
			t.Errorf("bound of bucket %d lands in bucket %d", i, got)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	// 100 observations at ~1ms, 10 at ~100ms: p50 must sit near 1ms and
	// p99 near 100ms (log-bucket resolution is 2x).
	for i := 0; i < 100; i++ {
		h.Observe(0.001)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.1)
	}
	s := h.snapshot()
	if s.Count != 110 {
		t.Fatalf("count %d", s.Count)
	}
	if want := 100*0.001 + 10*0.1; math.Abs(s.Sum-want) > 1e-9 {
		t.Fatalf("sum %g want %g", s.Sum, want)
	}
	if s.P50 < 0.0005 || s.P50 > 0.002 {
		t.Fatalf("p50 %g out of [0.5ms, 2ms]", s.P50)
	}
	if s.P99 < 0.05 || s.P99 > 0.2 {
		t.Fatalf("p99 %g out of [50ms, 200ms]", s.P99)
	}
	if s.Mean <= 0 || s.Mean >= s.P99 {
		t.Fatalf("mean %g implausible", s.Mean)
	}
	// Buckets are cumulative and end at +Inf with the full count.
	last := s.Buckets[len(s.Buckets)-1]
	if !math.IsInf(last.LE, 1) || last.Count != 110 {
		t.Fatalf("final bucket %+v", last)
	}
	for i := 1; i < len(s.Buckets); i++ {
		if s.Buckets[i].Count < s.Buckets[i-1].Count {
			t.Fatalf("bucket counts not cumulative at %d", i)
		}
	}
}

func TestHistogramDropsBadValues(t *testing.T) {
	h := &Histogram{}
	h.Observe(math.NaN())
	h.Observe(-1)
	if h.Count() != 0 {
		t.Fatalf("bad values observed: count %d", h.Count())
	}
}

func TestConcurrentObserve(t *testing.T) {
	h := &Histogram{}
	c := &Counter{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.001)
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 || c.Value() != 8000 {
		t.Fatalf("count %d counter %d", h.Count(), c.Value())
	}
	if math.Abs(h.Sum()-8.0) > 1e-6 {
		t.Fatalf("sum %g", h.Sum())
	}
}

func TestSnapshotExposition(t *testing.T) {
	r := New()
	r.Counter("mq_queries_total", "queries served").Add(3)
	r.Gauge("mq_partitions", "resident partitions").Set(2)
	h := r.Histogram("mq_read_seconds", "read latency")
	h.Observe(0.004)
	h.Observe(0.008)

	snap := r.Snapshot()

	var prom bytes.Buffer
	if err := snap.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	text := prom.String()
	for _, want := range []string{
		"# TYPE mq_queries_total counter",
		"mq_queries_total 3",
		"# TYPE mq_partitions gauge",
		"mq_partitions 2",
		"# TYPE mq_read_seconds histogram",
		`mq_read_seconds_bucket{le="+Inf"} 2`,
		"mq_read_seconds_count 2",
		"# HELP mq_queries_total queries served",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus output missing %q\n%s", want, text)
		}
	}

	var js bytes.Buffer
	if err := snap.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back struct {
		Counters   map[string]int64 `json:"counters"`
		Histograms map[string]struct {
			Count int64   `json:"count"`
			P50   float64 `json:"p50"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["mq_queries_total"] != 3 {
		t.Fatalf("json counters %+v", back.Counters)
	}
	if hs := back.Histograms["mq_read_seconds"]; hs.Count != 2 || hs.P50 <= 0 {
		t.Fatalf("json histogram %+v", hs)
	}
}
