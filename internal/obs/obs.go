// Package obs is the engine's observability substrate: a dependency-free
// metrics toolkit with atomic counters and gauges, log-scale latency
// histograms with quantile estimation, and a registry that exposes
// everything three ways — a structured Snapshot for programmatic use,
// Prometheus text-format exposition for scraping, and JSON (a Snapshot
// marshals directly) for the CLI.
//
// Production columnar stores treat query-level telemetry as the substrate
// for tuning and regression detection; this package is MISTIQUE's version
// of that layer. It is threaded through every hot path — ingest, flush,
// compaction, query and recovery — so the per-phase timings the paper's
// cost model (Sec. 5.1) reasons about are visible in the running system.
//
// Every instrument is nil-safe: methods on a nil *Counter, *Gauge or
// *Histogram are no-ops, and a nil *Registry hands out nil instruments.
// Instrumented code therefore carries no conditionals when metrics are
// disabled, and the disabled cost is one predictable nil check per event.
package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be non-negative for Prometheus semantics).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 for a nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram bucket layout: buckets grow by a factor of 2 from histMin
// (1µs) upward, which covers 1µs..~5.5e5s in 40 buckets at a worst-case
// quantile resolution of 2x — plenty for latencies and for the unitless
// ratios (cost-model relative error) the engine also tracks. Values at or
// below histMin land in bucket 0; values past the last bound land in the
// implicit +Inf overflow bucket.
const (
	histMin     = 1e-6
	histBuckets = 40
)

// Histogram is a lock-free log-scale histogram. Observations are float64
// values (seconds for latencies, plain ratios for error tracking).
type Histogram struct {
	counts [histBuckets + 1]atomic.Int64 // last slot is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

// Observe records one value. NaN and negative values are dropped.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) || v < 0 {
		return
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0 — the span-timing
// helper for hot paths (no closure allocation).
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Time starts a span and returns the function that ends it. Use
// defer h.Time()() to time a whole function, or capture the stop function
// to end the span mid-body.
func (h *Histogram) Time() (stop func()) {
	if h == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { h.ObserveSince(t0) }
}

// Count returns the number of observations (0 for a nil Histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// bucketIndex maps a value to its bucket: 0 holds (−∞, histMin],
// i in 1..histBuckets-1 holds (histMin·2^(i−1), histMin·2^i], and
// histBuckets is the +Inf overflow.
func bucketIndex(v float64) int {
	if v <= histMin {
		return 0
	}
	if math.IsInf(v, 1) {
		return histBuckets
	}
	idx := int(math.Ceil(math.Log2(v / histMin)))
	if idx < 0 {
		return 0
	}
	if idx > histBuckets {
		return histBuckets
	}
	return idx
}

// bucketBound returns the inclusive upper bound of bucket i (+Inf for the
// overflow bucket).
func bucketBound(i int) float64 {
	if i >= histBuckets {
		return math.Inf(1)
	}
	return histMin * math.Pow(2, float64(i))
}

// snapshotHistogram freezes a histogram into its exposition form.
func (h *Histogram) snapshot() HistogramSnapshot {
	var counts [histBuckets + 1]int64
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{
		Count: total,
		Sum:   math.Float64frombits(h.sum.Load()),
	}
	if total > 0 {
		s.Mean = s.Sum / float64(total)
		s.P50 = quantile(counts[:], total, 0.50)
		s.P95 = quantile(counts[:], total, 0.95)
		s.P99 = quantile(counts[:], total, 0.99)
	}
	// Cumulative bucket counts for Prometheus exposition.
	s.Buckets = make([]Bucket, 0, histBuckets+1)
	var cum int64
	for i, c := range counts {
		cum += c
		s.Buckets = append(s.Buckets, Bucket{LE: bucketBound(i), Count: cum})
	}
	return s
}

// quantile estimates the q-quantile from per-bucket counts, interpolating
// geometrically inside the covering bucket (linearly for bucket 0, whose
// lower edge is 0; the overflow bucket answers its lower bound).
func quantile(counts []int64, total int64, q float64) float64 {
	target := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			frac := (target - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			switch {
			case i == 0:
				return histMin * frac
			case i >= histBuckets:
				return bucketBound(histBuckets - 1)
			default:
				lo := bucketBound(i - 1)
				return lo * math.Pow(2, frac)
			}
		}
		cum = next
	}
	return bucketBound(histBuckets - 1)
}
