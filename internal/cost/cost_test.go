package cost

import (
	"math"
	"testing"

	"mistique/internal/metadata"
)

func model() *metadata.Model {
	return &metadata.Model{
		Name:          "vgg",
		Kind:          metadata.DNN,
		TotalExamples: 1000,
		ModelLoadSecs: 1.2,
		Stages: []metadata.Stage{
			{Name: "l0", Index: 0, ExecSeconds: 2.0},
			{Name: "l1", Index: 1, ExecSeconds: 4.0},
			{Name: "l2", Index: 2, ExecSeconds: 6.0},
		},
	}
}

func TestRerunSecondsAccumulatesStages(t *testing.T) {
	p := Params{InputBytesPerSec: 1e9, InputBytesPerExample: 1000}
	// Full dataset to last layer: 1.2 load + 1e-3 input + 12 exec.
	got, err := RerunSeconds(model(), 2, 1000, p)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.2 + 1000*1000/1e9 + 12.0
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("got %g want %g", got, want)
	}
	// Earlier layer costs less.
	l0, _ := RerunSeconds(model(), 0, 1000, p)
	if l0 >= got {
		t.Fatal("earlier stage should be cheaper")
	}
}

func TestRerunSecondsScalesLinearlyInExamples(t *testing.T) {
	p := Params{InputBytesPerSec: 1e9, InputBytesPerExample: 0}
	half, _ := RerunSeconds(model(), 2, 500, p)
	full, _ := RerunSeconds(model(), 2, 1000, p)
	// Subtract the fixed model-load cost; the rest should double.
	if math.Abs((full-1.2)-2*(half-1.2)) > 1e-9 {
		t.Fatalf("not linear: half=%g full=%g", half, full)
	}
}

func TestRerunSecondsErrors(t *testing.T) {
	p := DefaultParams()
	if _, err := RerunSeconds(model(), 3, 10, p); err == nil {
		t.Fatal("out-of-range stage accepted")
	}
	if _, err := RerunSeconds(model(), -1, 10, p); err == nil {
		t.Fatal("negative stage accepted")
	}
	m := model()
	m.TotalExamples = 0
	if _, err := RerunSeconds(m, 0, 10, p); err == nil {
		t.Fatal("zero TotalExamples accepted")
	}
}

func TestReadSeconds(t *testing.T) {
	p := Params{ReadBytesPerSec: 100e6}
	got := ReadSeconds(1000, 50000, p)
	want := 50000.0 * 1000.0 / 100e6
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %g want %g", got, want)
	}
	if ReadSeconds(1000, 10, Params{}) != 0 {
		t.Fatal("zero rate should yield 0")
	}
}

func TestChoose(t *testing.T) {
	if Choose(10, 1) != Read {
		t.Fatal("should read when re-run is slower")
	}
	if Choose(1, 10) != Rerun {
		t.Fatal("should re-run when reading is slower")
	}
	// Tie goes to Read (paper: t_rerun >= t_read reads).
	if Choose(5, 5) != Read {
		t.Fatal("tie should read")
	}
	if Read.String() != "READ" || Rerun.String() != "RERUN" {
		t.Fatal("strings")
	}
}

func TestGamma(t *testing.T) {
	// Saving 10s per query, 5 queries, 1e6 bytes: gamma = 50/1e6 s/B.
	got := Gamma(11, 1, 5, 1_000_000)
	if math.Abs(got-5e-5) > 1e-15 {
		t.Fatalf("gamma %g", got)
	}
	if Gamma(1, 2, 5, 100) != 0 {
		t.Fatal("negative saving should clamp to 0")
	}
	if Gamma(2, 1, 5, 0) != 0 {
		t.Fatal("zero storage should clamp to 0")
	}
	// Gamma grows with query count (the adaptive trigger).
	if Gamma(2, 1, 10, 100) <= Gamma(2, 1, 1, 100) {
		t.Fatal("gamma must grow with queries")
	}
}
