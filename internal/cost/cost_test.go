package cost

import (
	"math"
	"testing"

	"mistique/internal/metadata"
)

func model() *metadata.Model {
	return &metadata.Model{
		Name:          "vgg",
		Kind:          metadata.DNN,
		TotalExamples: 1000,
		ModelLoadSecs: 1.2,
		Stages: []metadata.Stage{
			{Name: "l0", Index: 0, ExecSeconds: 2.0},
			{Name: "l1", Index: 1, ExecSeconds: 4.0},
			{Name: "l2", Index: 2, ExecSeconds: 6.0},
		},
	}
}

func TestRerunSecondsAccumulatesStages(t *testing.T) {
	p := Params{InputBytesPerSec: 1e9, InputBytesPerExample: 1000}
	// Full dataset to last layer: 1.2 load + 1e-3 input + 12 exec.
	got, err := RerunSeconds(model(), 2, 1000, p)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.2 + 1000*1000/1e9 + 12.0
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("got %g want %g", got, want)
	}
	// Earlier layer costs less.
	l0, _ := RerunSeconds(model(), 0, 1000, p)
	if l0 >= got {
		t.Fatal("earlier stage should be cheaper")
	}
}

func TestRerunSecondsScalesLinearlyInExamples(t *testing.T) {
	p := Params{InputBytesPerSec: 1e9, InputBytesPerExample: 0}
	half, _ := RerunSeconds(model(), 2, 500, p)
	full, _ := RerunSeconds(model(), 2, 1000, p)
	// Subtract the fixed model-load cost; the rest should double.
	if math.Abs((full-1.2)-2*(half-1.2)) > 1e-9 {
		t.Fatalf("not linear: half=%g full=%g", half, full)
	}
}

func TestRerunSecondsErrors(t *testing.T) {
	p := DefaultParams()
	if _, err := RerunSeconds(model(), 3, 10, p); err == nil {
		t.Fatal("out-of-range stage accepted")
	}
	if _, err := RerunSeconds(model(), -1, 10, p); err == nil {
		t.Fatal("negative stage accepted")
	}
	m := model()
	m.TotalExamples = 0
	if _, err := RerunSeconds(m, 0, 10, p); err == nil {
		t.Fatal("zero TotalExamples accepted")
	}
}

func TestReadSeconds(t *testing.T) {
	p := Params{ReadBytesPerSec: 100e6}
	got := ReadSeconds(1000, 50000, p)
	want := 50000.0 * 1000.0 / 100e6
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %g want %g", got, want)
	}
	if ReadSeconds(1000, 10, Params{}) != 0 {
		t.Fatal("zero rate should yield 0")
	}
}

func TestChoose(t *testing.T) {
	if Choose(10, 1) != Read {
		t.Fatal("should read when re-run is slower")
	}
	if Choose(1, 10) != Rerun {
		t.Fatal("should re-run when reading is slower")
	}
	// Tie goes to Read (paper: t_rerun >= t_read reads).
	if Choose(5, 5) != Read {
		t.Fatal("tie should read")
	}
	if Read.String() != "READ" || Rerun.String() != "RERUN" {
		t.Fatal("strings")
	}
}

func TestGamma(t *testing.T) {
	// Saving 10s per query, 5 queries, 1e6 bytes: gamma = 50/1e6 s/B.
	got := Gamma(11, 1, 5, 1_000_000)
	if math.Abs(got-5e-5) > 1e-15 {
		t.Fatalf("gamma %g", got)
	}
	if Gamma(1, 2, 5, 100) != 0 {
		t.Fatal("negative saving should clamp to 0")
	}
	if Gamma(2, 1, 5, 0) != 0 {
		t.Fatal("zero storage should clamp to 0")
	}
	// Gamma grows with query count (the adaptive trigger).
	if Gamma(2, 1, 10, 100) <= Gamma(2, 1, 1, 100) {
		t.Fatal("gamma must grow with queries")
	}
}

// TestCostEdgeCases pins the model's behavior at the degenerate corners a
// serving layer can reach with legal requests: zero examples, zero
// widths, zero rates and exact ties.
func TestCostEdgeCases(t *testing.T) {
	t.Run("rerun", func(t *testing.T) {
		cases := []struct {
			name string
			upTo int
			nEx  int
			p    Params
			want float64
		}{
			// nEx=0 leaves only the fixed model-load cost: no input
			// bytes, no scaled stage time.
			{"zero examples is load cost only", 2, 0, Params{InputBytesPerSec: 1e9, InputBytesPerExample: 1000}, 1.2},
			// A zero input rate drops the input term entirely rather
			// than dividing by zero.
			{"zero input rate skips input term", 1, 1000, Params{InputBytesPerSec: 0, InputBytesPerExample: 1000}, 1.2 + 6.0},
			// Zero bytes per example reads no input even at full rate.
			{"zero input width skips input term", 1, 1000, Params{InputBytesPerSec: 1e9, InputBytesPerExample: 0}, 1.2 + 6.0},
		}
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				got, err := RerunSeconds(model(), tc.upTo, tc.nEx, tc.p)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(got-tc.want) > 1e-9 {
					t.Fatalf("got %g want %g", got, tc.want)
				}
				if math.IsNaN(got) || math.IsInf(got, 0) {
					t.Fatalf("degenerate estimate %g", got)
				}
			})
		}
	})

	t.Run("read", func(t *testing.T) {
		cases := []struct {
			name        string
			bytesPerRow int64
			nEx         int
			p           Params
			want        float64
		}{
			{"zero examples is free", 1000, 0, Params{ReadBytesPerSec: 100e6}, 0},
			{"zero width is free", 0, 50000, Params{ReadBytesPerSec: 100e6}, 0},
			{"zero rate yields zero not Inf", 1000, 50000, Params{}, 0},
			{"zero everything", 0, 0, Params{}, 0},
		}
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				got := ReadSeconds(tc.bytesPerRow, tc.nEx, tc.p)
				if got != tc.want {
					t.Fatalf("got %g want %g", got, tc.want)
				}
			})
		}
	})

	t.Run("choose ties", func(t *testing.T) {
		// The tie-break is load-bearing: callers (the serving layer's
		// estimate endpoint, the engine's fetch path) assume equal
		// estimates pin to READ, per the paper's t_rerun >= t_read rule.
		cases := []struct {
			name         string
			tRerun, tRead float64
			want         Strategy
		}{
			{"exact tie pins to read", 5, 5, Read},
			{"zero-zero tie pins to read", 0, 0, Read},
			{"epsilon above reads", math.Nextafter(5, 6), 5, Read},
			{"epsilon below reruns", math.Nextafter(5, 0), 5, Rerun},
		}
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				if got := Choose(tc.tRerun, tc.tRead); got != tc.want {
					t.Fatalf("Choose(%v, %v) = %v, want %v", tc.tRerun, tc.tRead, got, tc.want)
				}
			})
		}
	})

	t.Run("gamma", func(t *testing.T) {
		cases := []struct {
			name           string
			tRerun, tRead  float64
			nQuery, stored int64
			want           float64
		}{
			{"zero bytes clamps to zero", 10, 1, 5, 0, 0},
			{"negative bytes clamps to zero", 10, 1, 5, -64, 0},
			{"equal estimates save nothing", 5, 5, 100, 1 << 20, 0},
			{"read slower than rerun saves nothing", 1, 5, 100, 1 << 20, 0},
			{"zero queries accumulate nothing", 10, 1, 0, 1 << 20, 0},
		}
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				got := Gamma(tc.tRerun, tc.tRead, tc.nQuery, tc.stored)
				if got != tc.want {
					t.Fatalf("Gamma(%v,%v,%v,%v) = %g, want %g", tc.tRerun, tc.tRead, tc.nQuery, tc.stored, got, tc.want)
				}
				if math.IsNaN(got) || math.IsInf(got, 0) {
					t.Fatalf("degenerate gamma %g", got)
				}
			})
		}
	})
}

func TestSampleReadSeconds(t *testing.T) {
	p := Params{SampleBytesPerSec: 1e6}
	if got := SampleReadSeconds(1000, 100, p); got != 0.1 {
		t.Fatalf("SampleReadSeconds = %g, want 0.1", got)
	}
	// Unset rate falls back to the calibrated default rather than a free
	// (zero-cost) estimate.
	if got := SampleReadSeconds(1000, 100, Params{}); got <= 0 {
		t.Fatalf("default-rate SampleReadSeconds = %g, want > 0", got)
	}
	// A sample scan at the default rates beats a full READ of the same
	// intermediate whenever the sample is smaller than the population.
	def := DefaultParams()
	full := ReadSeconds(400, 100000, def)
	approx := SampleReadSeconds(32768, 400, def)
	if approx >= full {
		t.Fatalf("sample scan (%g) not cheaper than full read (%g)", approx, full)
	}
}

func TestSampleStrategyString(t *testing.T) {
	if Read.String() != "READ" || Rerun.String() != "RERUN" || Sample.String() != "SAMPLE" {
		t.Fatalf("strategy strings: %s/%s/%s", Read, Rerun, Sample)
	}
}
