// Package cost implements MISTIQUE's cost models (Sec. 5): the query cost
// model that decides whether to answer a query by re-running the model or
// by reading a materialized intermediate (Eqs. 1-4), and the storage cost
// model whose gamma trade-off drives adaptive materialization (Eq. 5).
//
// Stage execution times are measured once while the model is logged
// (metadata.Stage.ExecSeconds holds the full-dataset pass time) and both
// re-run and read costs scale linearly in the number of examples n_ex —
// exactly the linearity the paper validates in Fig. 8.
package cost

import (
	"fmt"

	"mistique/internal/metadata"
)

// Params holds the calibrated environment constants of the cost model.
type Params struct {
	// ReadBytesPerSec is rho_d: the effective rate at which stored
	// intermediates can be read, decompressed and reconstructed. It is
	// scheme-dependent (8BIT_QT pays reconstruction, LP_QT pays width);
	// use the calibrated per-scheme value.
	ReadBytesPerSec float64
	// InputBytesPerSec is rho: the rate at which raw input examples load
	// when re-running a model.
	InputBytesPerSec float64
	// InputBytesPerExample is sizeof(ex) for the model's raw input.
	InputBytesPerExample int64
	// SampleBytesPerSec is the effective rate for scanning an in-memory
	// reservoir sample — no decompression, no disk — used by
	// SampleReadSeconds to keep the SAMPLE strategy's estimates honest
	// against the estimate-vs-actual metrics.
	SampleBytesPerSec float64
}

// DefaultParams returns conservative defaults used before calibration.
func DefaultParams() Params {
	return Params{
		ReadBytesPerSec:      200e6,
		InputBytesPerSec:     500e6,
		InputBytesPerExample: 4 * 32 * 32 * 3,
		SampleBytesPerSec:    800e6,
	}
}

// RerunSeconds estimates t_rerun: the time to recompute the intermediate
// produced by stage (layer) upTo of model m for nEx examples, per Eq. 2/3.
// It is the model load cost, plus the input read cost, plus the sum of
// per-stage execution times scaled from the measured full-dataset pass.
func RerunSeconds(m *metadata.Model, upTo int, nEx int, p Params) (float64, error) {
	if upTo < 0 || upTo >= len(m.Stages) {
		return 0, fmt.Errorf("cost: stage %d out of range (model %s has %d)", upTo, m.Name, len(m.Stages))
	}
	if m.TotalExamples <= 0 {
		return 0, fmt.Errorf("cost: model %s has no TotalExamples", m.Name)
	}
	t := m.ModelLoadSecs
	if p.InputBytesPerSec > 0 {
		t += float64(nEx) * float64(p.InputBytesPerExample) / p.InputBytesPerSec
	}
	scale := float64(nEx) / float64(m.TotalExamples)
	for s := 0; s <= upTo; s++ {
		t += m.Stages[s].ExecSeconds * scale
	}
	return t, nil
}

// ReadSeconds estimates t_read: the time to fetch nEx examples of an
// intermediate whose stored width is bytesPerRow, per Eq. 4.
func ReadSeconds(bytesPerRow int64, nEx int, p Params) float64 {
	if p.ReadBytesPerSec <= 0 {
		return 0
	}
	return float64(nEx) * float64(bytesPerRow) / p.ReadBytesPerSec
}

// ChainReadSeconds estimates t_read for an intermediate whose newest
// generation is stored as a delta chain of the given depth: reconstructing
// one chunk pages in its base, the base's base, and so on — depth+1
// generations of stored bytes in the worst (cold) case. depth 0 is a full
// chunk and degenerates to ReadSeconds exactly; the estimate is strictly
// monotone in depth (for positive bytes and rate), which is what lets
// Choose fall back to RERUN once chain amplification outweighs re-running
// the model.
func ChainReadSeconds(bytesPerRow int64, nEx int, depth int, p Params) float64 {
	if depth < 0 {
		depth = 0
	}
	return ReadSeconds(bytesPerRow, nEx, p) * float64(depth+1)
}

// SampleReadSeconds estimates t_sample: the time to answer from an
// in-memory reservoir of sampleRows rows at the sampled width. The rate
// deliberately differs from ReadBytesPerSec — a sample scan pays neither
// decompression nor disk — so READ vs SAMPLE selection reflects the real
// asymmetry and shows up honestly in the estimate-vs-actual metrics.
func SampleReadSeconds(sampleRows int64, bytesPerRow int64, p Params) float64 {
	rate := p.SampleBytesPerSec
	if rate <= 0 {
		rate = DefaultParams().SampleBytesPerSec
	}
	return float64(sampleRows) * float64(bytesPerRow) / rate
}

// Strategy is the execution choice for a query.
type Strategy int

const (
	// Read answers the query from the materialized intermediate.
	Read Strategy = iota
	// Rerun recomputes the intermediate by executing the model.
	Rerun
	// Sample answers approximately from the reservoir sample, within an
	// error bound.
	Sample
)

func (s Strategy) String() string {
	switch s {
	case Read:
		return "READ"
	case Sample:
		return "SAMPLE"
	}
	return "RERUN"
}

// Choose picks the cheaper strategy: the paper reads the intermediate when
// t_rerun >= t_read.
func Choose(tRerun, tRead float64) Strategy {
	if tRerun >= tRead {
		return Read
	}
	return Rerun
}

// Gamma computes the storage trade-off of Eq. 5 in seconds per byte: the
// total query time saved per byte of storage spent, accumulated over
// nQuery queries. Materialize when Gamma exceeds the user's threshold.
// A non-positive storedBytes or a read slower than re-running yields 0.
func Gamma(tRerun, tRead float64, nQuery int64, storedBytes int64) float64 {
	if storedBytes <= 0 {
		return 0
	}
	saved := tRerun - tRead
	if saved <= 0 {
		return 0
	}
	return saved * float64(nQuery) / float64(storedBytes)
}
