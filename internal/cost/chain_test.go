package cost

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property tests pinning the delta-chain read cost model. The contract the
// engine's READ-vs-RERUN decision leans on: ChainReadSeconds degenerates
// to ReadSeconds at depth 0, is strictly monotone in chain depth, and
// grows without bound — so for any finite rerun cost there is a depth past
// which Choose falls back to RERUN.

func TestChainReadSecondsDepthZeroIsReadSeconds(t *testing.T) {
	p := Params{ReadBytesPerSec: 100e6}
	if got, want := ChainReadSeconds(1000, 5000, 0, p), ReadSeconds(1000, 5000, p); got != want {
		t.Fatalf("depth 0: %g, want ReadSeconds %g", got, want)
	}
	// Negative depth (unknown / not a delta) clamps to 0, not a discount.
	if got, want := ChainReadSeconds(1000, 5000, -3, p), ReadSeconds(1000, 5000, p); got != want {
		t.Fatalf("negative depth: %g, want %g", got, want)
	}
}

func TestChainReadSecondsMonotoneInDepth(t *testing.T) {
	// Quick-checked over random widths, row counts and rates: deeper chains
	// never estimate cheaper, and strictly cost more whenever the base read
	// is non-free.
	prop := func(bytesPerRow uint16, nEx uint16, rateMB uint16, depth uint8) bool {
		p := Params{ReadBytesPerSec: float64(rateMB%1000+1) * 1e6}
		b, n := int64(bytesPerRow), int(nEx)
		d := int(depth % 16)
		cur := ChainReadSeconds(b, n, d, p)
		next := ChainReadSeconds(b, n, d+1, p)
		if math.IsNaN(cur) || math.IsInf(cur, 0) {
			return false
		}
		if next < cur {
			return false
		}
		if b > 0 && n > 0 && next <= cur {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestChainAmplificationFlipsChooseToRerun(t *testing.T) {
	// A READ that beats RERUN at depth 0 must lose once amplification
	// pushes it past the rerun estimate — and the crossover is exactly
	// where the arithmetic says: depth d reads (d+1)x the stored bytes.
	p := Params{ReadBytesPerSec: 100e6, InputBytesPerSec: 1e9, InputBytesPerExample: 100}
	m := model()
	tRerun, err := RerunSeconds(m, 2, 1000, p)
	if err != nil {
		t.Fatal(err)
	}
	const bytesPerRow = 1 << 20 // 1 MiB rows: base read ~10.5s vs rerun ~13.3s
	base := ChainReadSeconds(bytesPerRow, 1000, 0, p)
	if Choose(tRerun, base) != Read {
		t.Fatalf("test premise broken: depth-0 read (%.2fs) should beat rerun (%.2fs)", base, tRerun)
	}
	flipped := false
	for d := 1; d <= 8; d++ {
		amp := ChainReadSeconds(bytesPerRow, 1000, d, p)
		want := base * float64(d+1)
		if math.Abs(amp-want) > 1e-9*want {
			t.Fatalf("depth %d: %g, want exactly %g", d, amp, want)
		}
		if Choose(tRerun, amp) == Rerun {
			flipped = true
			// The flip must be where amplification first exceeds rerun.
			if amp < tRerun {
				t.Fatalf("flipped to RERUN at depth %d while read (%.2fs) still beats rerun (%.2fs)", d, amp, tRerun)
			}
			break
		}
		if amp > tRerun {
			t.Fatalf("depth %d read (%.2fs) exceeds rerun (%.2fs) but Choose kept READ", d, amp, tRerun)
		}
	}
	if !flipped {
		t.Fatal("8 levels of amplification never flipped the choice; model is not charging chains")
	}
}
