package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, path string) (*Log, OpenResult) {
	t.Helper()
	l, res, err := Open(path, nil)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	t.Cleanup(func() { l.Close() })
	return l, res
}

func rec(i int) []byte { return []byte(fmt.Sprintf("record-%04d", i)) }

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stream.wal")
	l, res := openT(t, path)
	if len(res.Records) != 0 || res.TornBytes != 0 {
		t.Fatalf("fresh log replayed %d records, torn %d", len(res.Records), res.TornBytes)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := l.Append(rec(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if apps, syncs := l.Stats(); apps != n || syncs < n {
		t.Fatalf("stats: appends=%d syncs=%d, want %d appends and >=%d syncs", apps, syncs, n, n)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, res2 := openT(t, path)
	if res2.TornBytes != 0 {
		t.Fatalf("clean file reported torn tail of %d bytes", res2.TornBytes)
	}
	if len(res2.Records) != n {
		t.Fatalf("replayed %d records, want %d", len(res2.Records), n)
	}
	for i, r := range res2.Records {
		if !bytes.Equal(r, rec(i)) {
			t.Fatalf("record %d = %q, want %q", i, r, rec(i))
		}
	}
	// Appends after replay land behind the replayed records.
	if err := l2.Append(rec(n)); err != nil {
		t.Fatalf("Append after replay: %v", err)
	}
	l2.Close()
	_, res3 := openT(t, path)
	if len(res3.Records) != n+1 || !bytes.Equal(res3.Records[n], rec(n)) {
		t.Fatalf("post-replay append lost: %d records", len(res3.Records))
	}
}

func TestAppendBatchSingleSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.wal")
	l, _ := openT(t, path)
	_, syncs0 := l.Stats()
	batch := [][]byte{rec(0), rec(1), rec(2)}
	if err := l.AppendBatch(batch); err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	apps, syncs := l.Stats()
	if apps != 3 {
		t.Fatalf("appends = %d, want 3", apps)
	}
	if syncs != syncs0+1 {
		t.Fatalf("syncs = %d, want %d (one fsync per batch)", syncs, syncs0+1)
	}
	l.Close()
	_, res := openT(t, path)
	if len(res.Records) != 3 {
		t.Fatalf("replayed %d records, want 3", len(res.Records))
	}
}

func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []int{1, 3, 7, 8, 9, 12} {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "torn.wal")
			l, _ := openT(t, path)
			for i := 0; i < 3; i++ {
				if err := l.Append(rec(i)); err != nil {
					t.Fatalf("Append: %v", err)
				}
			}
			l.Close()

			// Tear: append `cut` bytes of a fourth record's frame by hand.
			full := make([]byte, 8+len(rec(3)))
			binary.LittleEndian.PutUint32(full[:4], uint32(len(rec(3))))
			binary.LittleEndian.PutUint32(full[4:8], crc32.Checksum(rec(3), crc32.MakeTable(crc32.Castagnoli)))
			copy(full[8:], rec(3))
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(full[:cut]); err != nil {
				t.Fatal(err)
			}
			f.Close()

			l2, res := openT(t, path)
			if len(res.Records) != 3 {
				t.Fatalf("replayed %d records, want 3 (acked prefix)", len(res.Records))
			}
			if res.TornBytes != int64(cut) {
				t.Fatalf("TornBytes = %d, want %d", res.TornBytes, cut)
			}
			// The truncation is physical: reopening again sees a clean file.
			l2.Close()
			_, res2 := openT(t, path)
			if res2.TornBytes != 0 || len(res2.Records) != 3 {
				t.Fatalf("after truncation: %d records, torn %d", len(res2.Records), res2.TornBytes)
			}
		})
	}
}

func TestCorruptMiddleEndsPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mid.wal")
	l, _ := openT(t, path)
	for i := 0; i < 4; i++ {
		if err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of record 2: it and everything after drop.
	off := len(header) + 2*(8+len(rec(0))) + 8
	data[off] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, res := openT(t, path)
	if len(res.Records) != 2 {
		t.Fatalf("replayed %d records, want 2 (prefix before corruption)", len(res.Records))
	}
	if res.TornBytes == 0 {
		t.Fatal("corrupted tail not reported as torn")
	}
}

func TestWrongMagicRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not.wal")
	if err := os.WriteFile(path, []byte("definitely not a WAL file"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(path, nil)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on foreign file: err = %v, want ErrCorrupt", err)
	}
	// The foreign file must survive untouched.
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "definitely not a WAL file" {
		t.Fatalf("foreign file clobbered: %q, %v", data, err)
	}
}

func TestRewriteKeepsTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rw.wal")
	l, _ := openT(t, path)
	for i := 0; i < 6; i++ {
		if err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Flush drained records 0-3; keep the tail.
	if err := l.Rewrite([][]byte{rec(4), rec(5)}); err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	// The log stays appendable after the handle swap.
	if err := l.Append(rec(6)); err != nil {
		t.Fatalf("Append after Rewrite: %v", err)
	}
	l.Close()
	_, res := openT(t, path)
	want := [][]byte{rec(4), rec(5), rec(6)}
	if len(res.Records) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(res.Records), len(want))
	}
	for i, r := range res.Records {
		if !bytes.Equal(r, want[i]) {
			t.Fatalf("record %d = %q, want %q", i, r, want[i])
		}
	}
	// Rewrite to empty drops everything.
	l2, _ := openT(t, path)
	if err := l2.Rewrite(nil); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	_, res2 := openT(t, path)
	if len(res2.Records) != 0 {
		t.Fatalf("rewrite-to-empty left %d records", len(res2.Records))
	}
}

func TestEmptyPayloadAndSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sz.wal")
	l, _ := openT(t, path)
	if got := l.Size(); got != int64(len(header)) {
		t.Fatalf("fresh size = %d, want %d", got, len(header))
	}
	if err := l.Append(nil); err != nil {
		t.Fatalf("Append(nil): %v", err)
	}
	if err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	wantSize := int64(len(header) + 8 + 0 + 8 + 1)
	if got := l.Size(); got != wantSize {
		t.Fatalf("size = %d, want %d", got, wantSize)
	}
	st, err := os.Stat(path)
	if err != nil || st.Size() != wantSize {
		t.Fatalf("on-disk size = %v/%v, want %d", st, err, wantSize)
	}
	l.Close()
	_, res := openT(t, path)
	if len(res.Records) != 2 || len(res.Records[0]) != 0 || string(res.Records[1]) != "x" {
		t.Fatalf("bad replay of empty payload: %#v", res.Records)
	}
}

func TestClosedLogRefusesAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "closed.wal")
	l, _ := openT(t, path)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec(0)); err == nil {
		t.Fatal("Append on closed log succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "big.wal")
	l, _ := openT(t, path)
	big := make([]byte, maxRecordBytes+1)
	if err := l.Append(big); err == nil {
		t.Fatal("oversize record accepted")
	}
}

func TestDecodeGarbageLengths(t *testing.T) {
	// A frame whose length field is huge must end the prefix, not allocate.
	buf := append([]byte{}, header[:]...)
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[:4], uint32(maxRecordBytes)+7)
	buf = append(buf, frame[:]...)
	recs, validLen, err := Decode(buf)
	if err != nil || len(recs) != 0 || validLen != int64(len(header)) {
		t.Fatalf("Decode garbage-length: recs=%d validLen=%d err=%v", len(recs), validLen, err)
	}
}
