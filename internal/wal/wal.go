// Package wal implements the write-ahead log behind the streaming ingest
// path: an append-only file of CRC-framed records that is fsynced before a
// batch is acknowledged, replayed on open, and rewritten (shrunk to the
// un-flushed tail) after the column store makes the drained prefix durable.
//
// The contract the engine builds on:
//
//   - Append returns only after the record's bytes and the fsync hit the
//     file, so an acknowledged batch survives any later crash.
//   - Open decodes the existing file and truncates a torn tail — the
//     debris a crash mid-append leaves — back to the last whole record.
//     Everything before the tear is returned intact; nothing after a valid
//     frame is ever invented.
//   - Rewrite atomically replaces the log's contents (temp → fsync →
//     rename → dir fsync), which is how a flush discards records whose
//     rows now live in durable partitions.
//
// File layout:
//
//	8 B   header  "MQWL" 0x01 0x00 0x00 0x00
//	per record:
//	  u32 LE  length of payload
//	  u32 LE  CRC32-C of payload
//	  length B payload (opaque to this package)
//
// Writes go through faultfs so the crash matrix can tear an append at an
// arbitrary byte; reads use plain os calls, mirroring the column store.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"mistique/internal/faultfs"
)

// ErrCorrupt marks a log whose header is unrecognized. Torn tails are not
// corruption — Open truncates them silently — but a file that is not a WAL
// at all must not be clobbered.
var ErrCorrupt = errors.New("wal: corrupt log file")

var header = [8]byte{'M', 'Q', 'W', 'L', 1, 0, 0, 0}

// maxRecordBytes bounds one record (64 MiB): a length field beyond it is
// treated as a torn/garbage tail, keeping hostile files from ballooning
// allocation during replay.
const maxRecordBytes = 64 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Decode parses a log image, returning the whole records and the byte
// length of the valid prefix (header included). A short, torn or
// CRC-mismatched tail simply ends the valid prefix — records before it are
// returned. A file too short to hold the header decodes as empty (validLen
// 0); a file with a wrong magic returns ErrCorrupt.
func Decode(data []byte) (records [][]byte, validLen int64, err error) {
	if len(data) < len(header) {
		return nil, 0, nil
	}
	for i, b := range header {
		if data[i] != b {
			return nil, 0, ErrCorrupt
		}
	}
	off := int64(len(header))
	for {
		rest := data[off:]
		if len(rest) < 8 {
			return records, off, nil
		}
		n := int64(binary.LittleEndian.Uint32(rest[:4]))
		crc := binary.LittleEndian.Uint32(rest[4:8])
		if n > maxRecordBytes || int64(len(rest)) < 8+n {
			return records, off, nil
		}
		payload := rest[8 : 8+n]
		if crc32.Checksum(payload, castagnoli) != crc {
			return records, off, nil
		}
		records = append(records, payload)
		off += 8 + n
	}
}

// Log is one open write-ahead log. Safe for concurrent use.
type Log struct {
	fs   faultfs.FS
	path string

	mu   sync.Mutex
	f    faultfs.File
	size int64
	// appends/syncs count the durability work done, for the engine's
	// mistique_wal_* metrics (read via Stats).
	appends int64
	syncs   int64
}

// OpenResult reports what Open found.
type OpenResult struct {
	// Records are the whole records replayed from the existing file, in
	// append order. The byte slices alias one buffer; callers consume them
	// before the next Append.
	Records [][]byte
	// TornBytes is how many trailing bytes were discarded as a torn tail
	// (0 on a clean file).
	TornBytes int64
}

// Open opens (creating if absent) the log at path, replaying its records
// and truncating any torn tail. fs nil uses the real filesystem.
func Open(path string, fs faultfs.FS) (*Log, OpenResult, error) {
	if fs == nil {
		fs = faultfs.OS()
	}
	var res OpenResult
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, res, fmt.Errorf("wal: read %s: %w", path, err)
	}
	records, validLen, err := Decode(data)
	if err != nil {
		return nil, res, fmt.Errorf("%w: %s", ErrCorrupt, path)
	}
	res.Records = records
	if int64(len(data)) > validLen {
		res.TornBytes = int64(len(data)) - validLen
	}
	l := &Log{fs: fs, path: path}
	if validLen == 0 {
		// Empty or headerless: start a fresh log (atomically, so a crash
		// here leaves either the old file or a whole new one).
		if err := l.rewriteLocked(nil); err != nil {
			return nil, res, err
		}
	} else if res.TornBytes > 0 {
		// Shrink to the valid prefix via the same atomic publish; the torn
		// bytes never reappear after a crash mid-rewrite.
		if err := l.rewriteLocked(records); err != nil {
			return nil, res, err
		}
	} else {
		f, err := fs.OpenAppend(path)
		if err != nil {
			return nil, res, fmt.Errorf("wal: open %s: %w", path, err)
		}
		l.f, l.size = f, validLen
	}
	return l, res, nil
}

// Append frames, writes and fsyncs one record; when it returns nil the
// record is durable.
func (l *Log) Append(payload []byte) error {
	return l.AppendBatch([][]byte{payload})
}

// AppendBatch appends several records under one fsync.
func (l *Log) AppendBatch(payloads [][]byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("wal: %s is closed", l.path)
	}
	var frame [8]byte
	wrote := int64(0)
	for _, p := range payloads {
		if int64(len(p)) > maxRecordBytes {
			return fmt.Errorf("wal: record of %d bytes exceeds the %d-byte cap", len(p), maxRecordBytes)
		}
		binary.LittleEndian.PutUint32(frame[:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(p, castagnoli))
		if _, err := l.f.Write(frame[:]); err != nil {
			return fmt.Errorf("wal: append %s: %w", l.path, err)
		}
		if _, err := l.f.Write(p); err != nil {
			return fmt.Errorf("wal: append %s: %w", l.path, err)
		}
		wrote += 8 + int64(len(p))
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync %s: %w", l.path, err)
	}
	l.size += wrote
	l.appends += int64(len(payloads))
	l.syncs++
	return nil
}

// Rewrite atomically replaces the log's contents with the given records —
// the flush path's truncation: records whose rows reached durable
// partitions are dropped, the still-pending tail is kept.
func (l *Log) Rewrite(payloads [][]byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rewriteLocked(payloads)
}

func (l *Log) rewriteLocked(payloads [][]byte) error {
	dir := filepath.Dir(l.path)
	f, err := l.fs.CreateTemp(dir, filepath.Base(l.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("wal: rewrite %s: %w", l.path, err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		l.fs.Remove(tmp)
		return fmt.Errorf("wal: rewrite %s: %w", l.path, err)
	}
	if _, err := f.Write(header[:]); err != nil {
		return fail(err)
	}
	size := int64(len(header))
	var frame [8]byte
	for _, p := range payloads {
		binary.LittleEndian.PutUint32(frame[:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(p, castagnoli))
		if _, err := f.Write(frame[:]); err != nil {
			return fail(err)
		}
		if _, err := f.Write(p); err != nil {
			return fail(err)
		}
		size += 8 + int64(len(p))
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		l.fs.Remove(tmp)
		return fmt.Errorf("wal: rewrite %s: %w", l.path, err)
	}
	if err := l.fs.Rename(tmp, l.path); err != nil {
		l.fs.Remove(tmp)
		return fmt.Errorf("wal: publish %s: %w", l.path, err)
	}
	if err := l.fs.SyncDir(dir); err != nil {
		return fmt.Errorf("wal: sync dir %s: %w", dir, err)
	}
	// Swap the append handle to the new file.
	if l.f != nil {
		l.f.Close()
	}
	nf, err := l.fs.OpenAppend(l.path)
	if err != nil {
		l.f = nil
		return fmt.Errorf("wal: reopen %s: %w", l.path, err)
	}
	l.f, l.size = nf, size
	l.syncs++
	return nil
}

// Size returns the current file size in bytes (header included).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Stats returns cumulative append and fsync counts.
func (l *Log) Stats() (appends, syncs int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends, l.syncs
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Close releases the append handle. The file remains for the next Open.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
