package wal

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"mistique/internal/faultfs"
)

// TestCrashMatrixAppend kills the process at every byte offset of an
// append (torn write + crash) and at the fsync, then reopens with a clean
// FS and asserts the acked/unacked contract: every record whose Append
// returned nil is replayed; the torn record is cleanly gone.
func TestCrashMatrixAppend(t *testing.T) {
	const acked = 5
	next := rec(acked)
	frameLen := int64(8 + len(next))
	for cut := int64(1); cut < frameLen; cut++ {
		t.Run(fmt.Sprintf("tornAt%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "crash.wal")
			inj := faultfs.NewInjector(nil)
			l, _, err := Open(path, inj)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < acked; i++ {
				if err := l.Append(rec(i)); err != nil {
					t.Fatalf("ack %d: %v", i, err)
				}
			}
			// Tear the next append after `cut` of its bytes, then crash.
			// (AfterBytes counts from Arm, so it is the offset into this
			// one append's frame.)
			inj.Arm(faultfs.Fault{Op: faultfs.OpWrite, AfterBytes: cut, Crash: true})
			if err := l.Append(next); err == nil {
				t.Fatal("append through a crash succeeded")
			}
			if !inj.Fired() {
				t.Fatal("fault never fired")
			}
			// Dead process: no Close. Recover with a clean FS.
			l2, res, err := Open(path, nil)
			if err != nil {
				t.Fatalf("recovery Open: %v", err)
			}
			defer l2.Close()
			if len(res.Records) != acked {
				t.Fatalf("recovered %d records, want %d acked", len(res.Records), acked)
			}
			for i, r := range res.Records {
				if !bytes.Equal(r, rec(i)) {
					t.Fatalf("acked record %d corrupted: %q", i, r)
				}
			}
			if res.TornBytes != cut {
				t.Fatalf("TornBytes = %d, want %d", res.TornBytes, cut)
			}
			// The recovered log accepts new appends where the acked ones end.
			if err := l2.Append(next); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
		})
	}
}

// TestCrashMatrixSyncFailure crashes at the fsync itself: the record's
// bytes may be in the file, but without the sync it was never acked, so
// replaying it is allowed but losing it is too — what must hold is that
// all previously acked records survive.
func TestCrashMatrixSyncFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sync.wal")
	inj := faultfs.NewInjector(nil)
	l, _, err := Open(path, inj)
	if err != nil {
		t.Fatal(err)
	}
	const acked = 4
	for i := 0; i < acked; i++ {
		if err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	inj.Arm(faultfs.Fault{Op: faultfs.OpSync, PathContains: "sync.wal", Crash: true})
	if err := l.Append(rec(acked)); err == nil {
		t.Fatal("append with crashed fsync succeeded")
	}
	_, res, err := Open(path, nil)
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	if len(res.Records) < acked {
		t.Fatalf("lost acked records: %d < %d", len(res.Records), acked)
	}
	for i := 0; i < acked; i++ {
		if !bytes.Equal(res.Records[i], rec(i)) {
			t.Fatalf("acked record %d corrupted", i)
		}
	}
}

// TestCrashMatrixRewrite crashes a Rewrite at each step (temp create,
// write, sync, rename, dir sync) and asserts the log is either fully the
// old contents or fully the new — never a mix, never empty.
func TestCrashMatrixRewrite(t *testing.T) {
	old := [][]byte{rec(0), rec(1), rec(2), rec(3)}
	kept := [][]byte{rec(2), rec(3)}
	steps := []faultfs.Fault{
		{Op: faultfs.OpCreate, PathContains: ".tmp", Crash: true},
		{Op: faultfs.OpWrite, PathContains: ".tmp", Crash: true},
		{Op: faultfs.OpWrite, PathContains: ".tmp", AfterBytes: 11, Crash: true},
		{Op: faultfs.OpSync, PathContains: ".tmp", Crash: true},
		{Op: faultfs.OpRename, Crash: true},
		{Op: faultfs.OpSyncDir, Crash: true},
	}
	for i, fault := range steps {
		t.Run(fmt.Sprintf("step%d_%s", i, fault.Op), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "rw.wal")
			// Build the starting log with a clean FS.
			l0, _, err := Open(path, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := l0.AppendBatch(old); err != nil {
				t.Fatal(err)
			}
			l0.Close()

			inj := faultfs.NewInjector(nil)
			l, _, err := Open(path, inj)
			if err != nil {
				t.Fatal(err)
			}
			inj.Arm(fault)
			err = l.Rewrite(kept)
			if !inj.Fired() {
				t.Skip("operation did not reach this step") // e.g. SyncDir after crash-free path
			}
			if err == nil && fault.Op != faultfs.OpSyncDir {
				t.Fatalf("Rewrite through a %s crash succeeded", fault.Op)
			}
			_, res, err := Open(path, nil)
			if err != nil {
				t.Fatalf("recovery Open: %v", err)
			}
			got := res.Records
			if !sameRecords(got, old) && !sameRecords(got, kept) {
				t.Fatalf("recovered %d records — neither the old nor the new contents", len(got))
			}
		})
	}
}

// TestCrashMatrixTruncation crashes the torn-tail truncation rewrite that
// Open itself performs, and asserts a second recovery still returns every
// acked record.
func TestCrashMatrixTruncation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trunc.wal")
	l0, _, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l0.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	l0.Close()
	// Tear the tail by hand.
	inj0 := faultfs.NewInjector(nil)
	l1, _, err := Open(path, inj0)
	if err != nil {
		t.Fatal(err)
	}
	inj0.Arm(faultfs.Fault{Op: faultfs.OpWrite, AfterBytes: 5, Crash: true})
	l1.Append(rec(3)) // torn

	// First recovery crashes during its truncation rewrite.
	inj := faultfs.NewInjector(nil)
	inj.Arm(faultfs.Fault{Op: faultfs.OpRename, Crash: true})
	if _, _, err := Open(path, inj); err == nil {
		t.Fatal("Open through a rename crash succeeded")
	}
	// Second recovery with a healthy FS: all acked records intact.
	_, res, err := Open(path, nil)
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	if len(res.Records) != 3 {
		t.Fatalf("recovered %d records, want 3", len(res.Records))
	}
	for i, r := range res.Records {
		if !bytes.Equal(r, rec(i)) {
			t.Fatalf("record %d corrupted after double crash", i)
		}
	}
}

func sameRecords(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}
