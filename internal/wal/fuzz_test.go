package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALDecode throws arbitrary bytes at Decode and checks the invariants
// replay relies on: no panic, the valid prefix re-decodes to the same
// records, and truncating a file at any point never invents records.
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(header[:])
	// One well-formed record.
	good := append([]byte{}, header[:]...)
	payload := []byte("hello wal")
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)))
	good = append(good, frame[:]...)
	good = append(good, payload...)
	f.Add(good)
	f.Add(good[:len(good)-3]) // torn payload
	f.Add(good[:len(good)-len(payload)-2])
	bad := append([]byte{}, good...)
	bad[len(bad)-1] ^= 0x5a // CRC mismatch
	f.Add(bad)
	huge := append([]byte{}, header[:]...)
	binary.LittleEndian.PutUint32(frame[:4], 0xffffffff)
	huge = append(huge, frame[:]...)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, validLen, err := Decode(data)
		if err != nil {
			if len(recs) != 0 || validLen != 0 {
				t.Fatalf("error decode returned records/validLen: %d/%d", len(recs), validLen)
			}
			return
		}
		if validLen < 0 || validLen > int64(len(data)) {
			t.Fatalf("validLen %d out of [0,%d]", validLen, len(data))
		}
		if validLen == 0 && len(recs) != 0 {
			t.Fatalf("records without a valid prefix")
		}
		// The valid prefix is a fixed point: decoding it again yields the
		// same records and consumes every byte.
		recs2, validLen2, err2 := Decode(data[:validLen])
		if err2 != nil || validLen2 != validLen || len(recs2) != len(recs) {
			t.Fatalf("prefix re-decode diverged: %d/%d records, validLen %d vs %d, err %v",
				len(recs2), len(recs), validLen2, validLen, err2)
		}
		for i := range recs {
			if !bytes.Equal(recs[i], recs2[i]) {
				t.Fatalf("record %d changed across re-decode", i)
			}
		}
		// Open on the same bytes must replay exactly the decoded records
		// and leave a clean, fully-valid file behind (torn tail gone).
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, res, err := Open(path, nil)
		if err != nil {
			return // foreign magic — refused, not truncated
		}
		defer l.Close()
		if len(res.Records) != len(recs) {
			t.Fatalf("Open replayed %d records, Decode found %d", len(res.Records), len(recs))
		}
		after, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		recs3, validLen3, err3 := Decode(after)
		if err3 != nil || len(recs3) != len(recs) || validLen3 != int64(len(after)) {
			t.Fatalf("post-Open file not clean: %d records, validLen %d of %d, err %v",
				len(recs3), validLen3, len(after), err3)
		}
	})
}
