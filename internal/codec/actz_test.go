package codec

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// TestShuffleRoundTrip: shuffle2/unshuffle2 invert each other at every
// small length (odd lengths exercise the trailing-even-byte rule).
func TestShuffleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for n := 0; n <= 65; n++ {
		src := make([]byte, n)
		rng.Read(src)
		sh := shuffle2(nil, src)
		if len(sh) != n {
			t.Fatalf("n=%d: shuffle changed length to %d", n, len(sh))
		}
		got := unshuffle2(nil, sh)
		if !bytes.Equal(got, src) {
			t.Fatalf("n=%d: unshuffle(shuffle(x)) != x", n)
		}
	}
}

// TestAnalyzeBlockDiscriminates: the shuffle heuristic must fire on
// interleaved two-population data (f16-like) and stay off for uniform
// symbol streams (kbit-like), and the compressibility probe must flag
// uniform noise as incompressible so the encoder skips LZ+Huffman while
// still trying on skewed data.
func TestAnalyzeBlockDiscriminates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f16 := make([]byte, 32*1024)
	for i := 0; i < len(f16); i += 2 {
		f16[i] = byte(rng.Intn(256)) // noisy mantissa byte
		f16[i+1] = 0x3c | byte(rng.Intn(4))
	}
	if shuf, comp := analyzeBlock(f16); !shuf || !comp {
		t.Errorf("analyzeBlock(f16) = (%v, %v), want shuffle and compressible", shuf, comp)
	}
	uniform := make([]byte, 32*1024)
	rng.Read(uniform)
	if shuf, comp := analyzeBlock(uniform); shuf || comp {
		t.Errorf("analyzeBlock(uniform) = (%v, %v), want neither", shuf, comp)
	}
	if shuf, comp := analyzeBlock(uniform[:100]); shuf || !comp {
		// Below the sampling floor: never shuffle, but let the cheap
		// small-block attempts run.
		t.Errorf("analyzeBlock(small) = (%v, %v), want (false, true)", shuf, comp)
	}
	skewed := make([]byte, 32*1024)
	for i := range skewed {
		skewed[i] = byte(rng.Intn(16)) // 4-bit symbols: clearly compressible
	}
	if _, comp := analyzeBlock(skewed); !comp {
		t.Error("analyzeBlock flagged a 4-bit symbol stream incompressible")
	}
}

// TestHuffRoundTrip covers the entropy coder alone: skewed, degenerate
// single-symbol, and two-symbol alphabets, at lengths around the LUT and
// bit-buffer edges.
func TestHuffRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	shapes := map[string][]byte{}
	skew := make([]byte, 20000)
	for i := range skew {
		skew[i] = byte(rng.Intn(8)) * byte(rng.Intn(4)) // heavy skew to 0
	}
	shapes["skewed"] = skew
	shapes["single-symbol"] = bytes.Repeat([]byte{0x55}, 9001)
	two := make([]byte, 5000)
	for i := range two {
		if rng.Intn(10) == 0 {
			two[i] = 1
		}
	}
	shapes["two-symbol"] = two
	// Deep-tree stress: exponential-ish frequency ladder forces long code
	// lengths and the 12-bit flattening loop.
	var ladder []byte
	for s, n := 0, 1<<15; s < 20; s, n = s+1, n/2+1 {
		ladder = append(ladder, bytes.Repeat([]byte{byte(s)}, n)...)
	}
	shapes["ladder"] = ladder

	for name, src := range shapes {
		comp, ok := huffCompress(nil, src)
		if !ok {
			t.Fatalf("%s: huffCompress bailed on compressible data", name)
		}
		if len(comp) >= len(src) {
			t.Fatalf("%s: no gain (%d -> %d)", name, len(src), len(comp))
		}
		got, err := huffDecompress(nil, comp, len(src))
		if err != nil {
			t.Fatalf("%s: decompress: %v", name, err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("%s: round trip changed data", name)
		}
	}

	// Incompressible data must bail, not expand.
	noise := make([]byte, 8192)
	rng.Read(noise)
	if _, ok := huffCompress(nil, noise); ok {
		t.Error("huffCompress claimed a win on uniform noise")
	}
}

// TestHuffDecompressCorrupt: truncations and table corruptions of a valid
// stream must error, never panic, never return wrong-length data.
func TestHuffDecompressCorrupt(t *testing.T) {
	src := bytes.Repeat([]byte("abacabad"), 2000)
	comp, ok := huffCompress(nil, src)
	if !ok {
		t.Fatal("setup: huffCompress bailed")
	}
	for cut := 0; cut < len(comp); cut += 1 + len(comp)/50 {
		if _, err := huffDecompress(nil, comp[:cut], len(src)); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
	// Corrupt the nibble length table (it starts after the origLen
	// uvarint). A flip that breaks the Kraft equality must be rejected; a
	// flip that happens to produce another complete prefix code decodes —
	// to different bytes, which the chunk CRC one layer up catches. The
	// contract here: never a panic, never a silent identity decode.
	_, tableOff := binary.Uvarint(comp)
	for i := tableOff; i < tableOff+huffTableBytes; i += 7 {
		bad := append([]byte(nil), comp...)
		bad[i] ^= 0x11
		got, err := huffDecompress(nil, bad, len(src))
		if err == nil && bytes.Equal(got, src) {
			t.Fatalf("table corruption at %d decoded back to the original", i)
		}
	}
	// maxOut smaller than the real length must error instead of overrun.
	if _, err := huffDecompress(nil, comp, len(src)/2); err == nil {
		t.Fatal("huffDecompress ignored maxOut")
	}
	// A nibble can name lengths 13..15, beyond the 12-bit cap. Such a
	// table must be rejected outright: 12-l underflows in the Kraft sum,
	// so the bad length would otherwise slip through the equality check
	// and run assignCodes off the end of its arrays (found by fuzzing).
	for _, overLen := range []byte{13, 14, 15} {
		bad := append([]byte(nil), comp...)
		bad[tableOff] = overLen // symbol 0's low nibble
		if _, err := huffDecompress(nil, bad, len(src)); err == nil {
			t.Fatalf("table with length-%d code decoded cleanly", overLen)
		}
	}
}

// TestLZRoundTrip covers the match coder alone.
func TestLZRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	shapes := map[string][]byte{
		"zeros":   make([]byte, 50000),
		"repeats": bytes.Repeat([]byte("0123456789abcdef"), 3000),
	}
	mixed := make([]byte, 60000)
	for i := range mixed {
		if i%97 < 90 {
			mixed[i] = byte(i % 7)
		} else {
			mixed[i] = byte(rng.Intn(256))
		}
	}
	shapes["mixed"] = mixed
	// Overlapping short-offset matches (RLE-ish period 1, 2, 3).
	for _, p := range []int{1, 2, 3} {
		b := make([]byte, 10000)
		for i := range b {
			b[i] = byte(i % p * 37)
		}
		shapes["period-"+itoa(p)] = b
	}

	for name, src := range shapes {
		comp, ok := lzCompress(nil, src)
		if !ok {
			t.Fatalf("%s: lzCompress bailed on compressible data", name)
		}
		if len(comp) >= len(src) {
			t.Fatalf("%s: no gain", name)
		}
		got, err := lzDecompress(nil, comp, len(src))
		if err != nil {
			t.Fatalf("%s: decompress: %v", name, err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("%s: round trip changed data", name)
		}
	}

	noise := make([]byte, 8192)
	rng.Read(noise)
	if _, ok := lzCompress(nil, noise); ok {
		t.Error("lzCompress claimed a win on uniform noise")
	}
	if _, ok := lzCompress(nil, []byte("tiny")); ok {
		t.Error("lzCompress claimed a win on a tiny input")
	}
}

// TestLZDecompressCorrupt: truncated streams, zero/out-of-range offsets,
// and maxOut overruns must all error.
func TestLZDecompressCorrupt(t *testing.T) {
	src := bytes.Repeat([]byte("abcdabcdabcd----"), 2000)
	comp, ok := lzCompress(nil, src)
	if !ok {
		t.Fatal("setup: lzCompress bailed")
	}
	for cut := 0; cut < len(comp); cut += 1 + len(comp)/50 {
		if _, err := lzDecompress(nil, comp[:cut], len(src)); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
	if _, err := lzDecompress(nil, comp, len(src)-1); err == nil {
		t.Fatal("lzDecompress ignored maxOut")
	}
	// Hand-built stream with a zero offset: litLen=0, match m=1 (len 4), off=0.
	bad := binary.AppendUvarint(nil, 0)
	bad = binary.AppendUvarint(bad, 1)
	bad = binary.AppendUvarint(bad, 0)
	if _, err := lzDecompress(nil, bad, 100); err == nil {
		t.Fatal("zero offset decoded cleanly")
	}
	// Offset pointing before the start of the block.
	bad = binary.AppendUvarint(nil, 4)
	bad = append(bad, 'a', 'b', 'c', 'd')
	bad = binary.AppendUvarint(bad, 1)
	bad = binary.AppendUvarint(bad, 9)
	if _, err := lzDecompress(nil, bad, 100); err == nil {
		t.Fatal("out-of-range offset decoded cleanly")
	}
}

// TestActzBlockBoundaries: inputs straddling the 128 KiB block size by one
// byte either way round-trip, and multi-block inputs decode back block by
// block.
func TestActzBlockBoundaries(t *testing.T) {
	c := MustByID(IDActz)
	for _, n := range []int{actzMaxBlock - 1, actzMaxBlock, actzMaxBlock + 1, 2*actzMaxBlock + 3} {
		src := make([]byte, n)
		for i := range src {
			src[i] = byte(i >> 5)
		}
		comp, err := c.Compress(nil, src, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Decompress(nil, comp)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("n=%d: round trip changed data", n)
		}
	}
}

// TestActzDecompressCorrupt: invalid mode bytes, the forbidden
// raw+shuffle combination, length lies, and truncations must all error.
func TestActzDecompressCorrupt(t *testing.T) {
	c := MustByID(IDActz)
	src := bytes.Repeat([]byte{0, 0, 0, 1, 0, 0, 0, 2}, 8192)
	comp, err := c.Compress(nil, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(comp); cut += 1 + len(comp)/40 {
		if _, derr := c.Decompress(nil, comp[:cut]); derr == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}

	frame := func(mode byte, rawLen, encLen int, payload []byte) []byte {
		b := []byte{mode}
		b = binary.AppendUvarint(b, uint64(rawLen))
		b = binary.AppendUvarint(b, uint64(encLen))
		return append(b, payload...)
	}
	cases := map[string][]byte{
		"unknown-mode-bits": frame(0x40|amRaw, 4, 4, []byte("abcd")),
		"raw-plus-shuffle":  frame(amRaw|amShuffle, 4, 4, []byte("abcd")),
		"zero-rawlen":       frame(amRaw, 0, 0, nil),
		"huge-rawlen":       frame(amRaw, actzMaxBlock+1, 4, []byte("abcd")),
		"enclen-gt-rawlen":  frame(amLZ, 4, 8, []byte("abcdefgh")),
		"raw-len-mismatch":  frame(amRaw, 8, 4, []byte("abcd")),
		"lz-garbage":        frame(amLZ, 64, 3, []byte{0x80, 0x80, 0x80}),
		"huff-garbage":      frame(amHuff, 64, 3, []byte{0xff, 0xff, 0xff}),
	}
	for name, bad := range cases {
		if _, derr := c.Decompress(nil, bad); derr == nil {
			t.Errorf("%s decoded cleanly", name)
		}
	}
}

// TestActzWinsOnStoreShapes pins the acceptance bar at the codec level:
// actz must beat gzip(BestSpeed) on size for the threshold-like stream
// and stay within a hair of raw for the incompressible kbit stream (the
// raw fast path), and never expand anything by more than the framing.
func TestActzWinsOnStoreShapes(t *testing.T) {
	gz, ac := MustByID(IDGzip), MustByID(IDActz)
	streams := testStreams(t)
	gzSize := func(src []byte) int {
		g, err := gz.Compress(nil, src, 1)
		if err != nil {
			t.Fatal(err)
		}
		return len(g)
	}
	acSize := func(src []byte) int {
		a, err := ac.Compress(nil, src, 0)
		if err != nil {
			t.Fatal(err)
		}
		return len(a)
	}
	// The sparse coder must beat deflate outright on activation bitmaps.
	if a, g := acSize(streams["threshold-sparse"]), gzSize(streams["threshold-sparse"]); a >= g {
		t.Errorf("threshold-sparse: actz %d >= gzip %d bytes", a, g)
	}
	// On f16 pages parity is enough (the win there is encode speed).
	if a, g := acSize(streams["f16-interleaved"]), gzSize(streams["f16-interleaved"]); a > g+g/100 {
		t.Errorf("f16-interleaved: actz %d > gzip %d +1%%", a, g)
	}
	kbit := streams["kbit-uniform"]
	a, err := ac.Compress(nil, kbit, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) > len(kbit)+len(kbit)/1024+64 {
		t.Errorf("kbit: actz expanded %d -> %d", len(kbit), len(a))
	}
}
