// Package codec implements the pluggable partition-payload compressors
// behind MISTIQUE's column store (Sec. 4 of the paper trades footprint
// against read cost; the codec is where the footprint half is won).
//
// A Codec turns one serialized partition image into compressed bytes and
// back. Three implementations are registered at init:
//
//   - gzip:  stdlib deflate, the historical default. Files it writes are
//     byte-identical to the pre-codec format (a bare gzip stream), so
//     directories written before the codec seam existed — and by it —
//     interoperate in both directions.
//   - store: no compression. For incompressible LP pages it removes the
//     deflate pass entirely from the flush path.
//   - actz:  the activation-tuned codec. Splits the image into blocks and
//     per block applies a stride-2 byte transpose ("shuffle") when the
//     data looks like f16/LP pairs, a greedy LZ pass for repetitive
//     streams (THRESHOLD bitmaps), and an order-0 canonical Huffman
//     coder, falling back to raw bytes when a block is incompressible
//     (KBIT quantile-bin streams are near max entropy by construction).
//
// Codec IDs are part of the on-disk partition container format (v3) and
// must never be reused or renumbered.
package codec

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Registered codec IDs. The ID is written into partition file headers;
// the zero value is deliberately invalid so a zeroed header byte can
// never alias a real codec.
const (
	IDGzip  byte = 1
	IDStore byte = 2
	IDActz  byte = 3
)

// ErrUnknown marks a lookup of a codec this binary does not know —
// typically a partition file written by a newer version. Callers map it
// to their own unsupported-format sentinel rather than treating the file
// as corrupt.
var ErrUnknown = errors.New("codec: unknown codec")

// Codec compresses and decompresses byte blobs. Implementations must be
// safe for concurrent use and must reject corrupt input from Decompress
// with an error — never a panic, never a runaway allocation.
type Codec interface {
	// Name is the stable registry key ("gzip", "store", "actz").
	Name() string
	// ID is the one-byte on-disk identifier.
	ID() byte
	// Compress appends the compressed form of src to dst and returns the
	// extended slice. level is a codec-specific effort knob (gzip levels;
	// ignored by store and actz).
	Compress(dst, src []byte, level int) ([]byte, error)
	// Decompress appends the decompressed form of src to dst and returns
	// the extended slice. Callers presize dst's capacity when they know
	// the decoded length.
	Decompress(dst, src []byte) ([]byte, error)
}

var (
	regMu     sync.RWMutex
	regByName = make(map[string]Codec)
	regByID   = make(map[byte]Codec)
)

// Register adds a codec to the registry. It panics on a duplicate name
// or ID: codec identity is on-disk format, and two claimants means a
// corruption bug waiting to happen. Tests may register private codecs
// with IDs >= 0x80.
func Register(c Codec) {
	regMu.Lock()
	defer regMu.Unlock()
	if c.ID() == 0 {
		panic("codec: Register with reserved ID 0")
	}
	if _, dup := regByName[c.Name()]; dup {
		panic(fmt.Sprintf("codec: duplicate name %q", c.Name()))
	}
	if _, dup := regByID[c.ID()]; dup {
		panic(fmt.Sprintf("codec: duplicate id %d", c.ID()))
	}
	regByName[c.Name()] = c
	regByID[c.ID()] = c
}

// ByName resolves a codec by registry name.
func ByName(name string) (Codec, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := regByName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q (registered: %v)", ErrUnknown, name, namesLocked())
	}
	return c, nil
}

// ByID resolves a codec by its on-disk ID byte.
func ByID(id byte) (Codec, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := regByID[id]
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrUnknown, id)
	}
	return c, nil
}

// MustByID is ByID for codecs the package itself registers; it panics on
// a miss (a programming error, not an input error).
func MustByID(id byte) Codec {
	c, err := ByID(id)
	if err != nil {
		panic(err)
	}
	return c
}

// Names lists the registered codec names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	names := make([]string, 0, len(regByName))
	for n := range regByName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
