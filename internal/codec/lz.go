package codec

import (
	"encoding/binary"
	"errors"
	"math/bits"
	"sync"
)

// Greedy byte-LZ in the snappy/S2 spirit: a 16K-entry hash table of
// 4-byte prefixes, 8-bytes-at-a-time match extension, and skip
// acceleration through incompressible regions. Match lengths are
// unbounded uvarints, which is what lets THRESHOLD bitmaps (megabyte runs
// of zero bytes) collapse to a handful of sequences — an order-0 entropy
// coder alone caps out at 8x on those streams.
//
// Sequence layout, repeated until the terminator:
//
//	uvarint  litLen
//	litLen B literals
//	uvarint  m        0 terminates the stream; otherwise matchLen = m+3
//	uvarint  offset   distance back from the current position (>=1)
const (
	lzMinMatch = 4
	lzHashLog  = 14
)

var errLZCorrupt = errors.New("codec: corrupt lz stream")

var lzTablePool = sync.Pool{New: func() any { return new([1 << lzHashLog]int32) }}

func lzHash(v uint32) uint32 { return v * 2654435761 >> (32 - lzHashLog) }

func load32(b []byte, i int) uint32 { return binary.LittleEndian.Uint32(b[i:]) }
func load64(b []byte, i int) uint64 { return binary.LittleEndian.Uint64(b[i:]) }

// lzCompress appends the LZ form of src to dst; ok=false (dst returned
// unchanged) when src is too small or did not shrink by at least 1/16 —
// callers then keep the uncoded bytes and skip LZ decode entirely.
func lzCompress(dst, src []byte) ([]byte, bool) {
	n := len(src)
	if n < 16 {
		return dst, false
	}
	budget := n - n/16
	table := lzTablePool.Get().(*[1 << lzHashLog]int32)
	defer lzTablePool.Put(table)
	for i := range table {
		table[i] = 0 // entries store candidate+1 so zero means empty
	}
	start := len(dst)
	out := dst
	s := 1
	lit := 0
	checked := 0
	table[lzHash(load32(src, 0))] = 1
	for s+8 <= n {
		h := lzHash(load32(src, s))
		c := int(table[h]) - 1
		table[h] = int32(s + 1)
		if c >= 0 && load32(src, c) == load32(src, s) {
			mlen := lzMinMatch
			for s+mlen+8 <= n {
				x := load64(src, s+mlen) ^ load64(src, c+mlen)
				if x != 0 {
					mlen += bits.TrailingZeros64(x) >> 3
					goto matched
				}
				mlen += 8
			}
			for s+mlen < n && src[c+mlen] == src[s+mlen] {
				mlen++
			}
		matched:
			out = binary.AppendUvarint(out, uint64(s-lit))
			out = append(out, src[lit:s]...)
			out = binary.AppendUvarint(out, uint64(mlen-3))
			out = binary.AppendUvarint(out, uint64(s-c))
			s += mlen
			lit = s
			checked = 0
			if len(out)-start > budget {
				return dst, false
			}
			continue
		}
		checked++
		s += 1 + checked>>5
	}
	out = binary.AppendUvarint(out, uint64(n-lit))
	out = append(out, src[lit:]...)
	out = binary.AppendUvarint(out, 0)
	if len(out)-start >= budget {
		return dst, false
	}
	return out, true
}

// lzDecompress appends the decoded bytes to dst, which must decode to at
// most maxOut bytes past its current length. Any malformed input —
// short varints, offsets past the block start, output overrun, trailing
// garbage — returns an error; the caller's CRC then never sees the data.
func lzDecompress(dst, src []byte, maxOut int) ([]byte, error) {
	base := len(dst)
	for {
		litLen, k := binary.Uvarint(src)
		if k <= 0 || litLen > uint64(len(src)-k) {
			return dst, errLZCorrupt
		}
		src = src[k:]
		if int(litLen) > maxOut-(len(dst)-base) {
			return dst, errLZCorrupt
		}
		dst = append(dst, src[:litLen]...)
		src = src[litLen:]
		m, k := binary.Uvarint(src)
		if k <= 0 {
			return dst, errLZCorrupt
		}
		src = src[k:]
		if m == 0 {
			if len(src) != 0 {
				return dst, errLZCorrupt
			}
			return dst, nil
		}
		if m > uint64(maxOut) {
			return dst, errLZCorrupt
		}
		mlen := int(m) + 3
		off, k := binary.Uvarint(src)
		if k <= 0 || off == 0 || off > uint64(len(dst)-base) {
			return dst, errLZCorrupt
		}
		src = src[k:]
		if mlen > maxOut-(len(dst)-base) {
			return dst, errLZCorrupt
		}
		dst = appendCopy(dst, int(off), mlen)
	}
}

// appendCopy appends mlen bytes starting off back from the end of dst,
// doubling through overlap so long runs (off < mlen) cost O(log) copies
// instead of a byte loop.
func appendCopy(dst []byte, off, mlen int) []byte {
	p := len(dst) - off
	if off >= mlen {
		return append(dst, dst[p:p+mlen]...)
	}
	pos := len(dst)
	dst = grow(dst, mlen)
	copied := copy(dst[pos:pos+mlen], dst[p:pos])
	for copied < mlen {
		copied += copy(dst[pos+copied:pos+mlen], dst[pos:pos+copied])
	}
	return dst
}

// grow extends dst's length by n, reallocating only when capacity runs
// out.
func grow(dst []byte, n int) []byte {
	if len(dst)+n <= cap(dst) {
		return dst[:len(dst)+n]
	}
	return append(dst, make([]byte, n)...)
}
