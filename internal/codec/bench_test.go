package codec

import (
	"compress/gzip"
	"fmt"
	"testing"
)

// benchStreams returns the three store-shaped streams the partition
// benches use, at raw codec level (no chunk framing).
func benchStreams(b *testing.B) map[string][]byte {
	all := testStreams(b)
	return map[string][]byte{
		"f16":       all["f16-interleaved"],
		"kbit":      all["kbit-uniform"],
		"threshold": all["threshold-sparse"],
	}
}

func BenchmarkCodecCompress(b *testing.B) {
	for _, sname := range []string{"f16", "kbit", "threshold"} {
		src := benchStreams(b)[sname]
		for _, cname := range []string{"gzip", "store", "actz"} {
			c, err := ByName(cname)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("stream=%s/codec=%s", sname, cname), func(b *testing.B) {
				var buf []byte
				var n int
				b.SetBytes(int64(len(src)))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var err error
					buf, err = c.Compress(buf[:0], src, gzip.BestSpeed)
					if err != nil {
						b.Fatal(err)
					}
					n = len(buf)
				}
				b.ReportMetric(float64(n), "compbytes")
			})
		}
	}
}

// BenchmarkActzParallel is the before/after pair for the parallel block
// path on a many-block image: workers=1 is the serial baseline, workers=0
// lets the codec fan out to GOMAXPROCS.
func BenchmarkActzParallel(b *testing.B) {
	c := MustByID(IDActz)
	src := bigMixedImage(b, 24)
	comp, err := c.Compress(nil, src, 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 0} {
		wname := "max"
		if w == 1 {
			wname = "1"
		}
		b.Run("mode=compress/workers="+wname, func(b *testing.B) {
			pinActzWorkers(b, w)
			var buf []byte
			b.SetBytes(int64(len(src)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				if buf, err = c.Compress(buf[:0], src, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("mode=decompress/workers="+wname, func(b *testing.B) {
			pinActzWorkers(b, w)
			var buf []byte
			b.SetBytes(int64(len(src)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				if buf, err = c.Decompress(buf[:0], comp); err != nil {
					b.Fatal(err)
				}
				if len(buf) != len(src) {
					b.Fatal("length mismatch")
				}
			}
		})
	}
}

func BenchmarkCodecDecompress(b *testing.B) {
	for _, sname := range []string{"f16", "kbit", "threshold"} {
		src := benchStreams(b)[sname]
		for _, cname := range []string{"gzip", "store", "actz"} {
			c, err := ByName(cname)
			if err != nil {
				b.Fatal(err)
			}
			comp, err := c.Compress(nil, src, gzip.BestSpeed)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("stream=%s/codec=%s", sname, cname), func(b *testing.B) {
				var buf []byte
				b.SetBytes(int64(len(src)))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var err error
					buf, err = c.Decompress(buf[:0], comp)
					if err != nil {
						b.Fatal(err)
					}
					if len(buf) != len(src) {
						b.Fatal("length mismatch")
					}
				}
			})
		}
	}
}
