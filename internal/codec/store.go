package codec

func init() { Register(storeCodec{}) }

// storeCodec stores bytes verbatim. It exists for pages that do not
// compress — raw LP activations are close to incompressible once the f16
// mantissas dominate — where any compressor only burns flush CPU. The
// partition container's whole-file CRC still covers the payload.
type storeCodec struct{}

func (storeCodec) Name() string { return "store" }
func (storeCodec) ID() byte     { return IDStore }

func (storeCodec) Compress(dst, src []byte, _ int) ([]byte, error) {
	return append(dst, src...), nil
}

func (storeCodec) Decompress(dst, src []byte) ([]byte, error) {
	return append(dst, src...), nil
}
