package codec

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sync"
)

func init() { Register(gzipCodec{}) }

// gzipCodec wraps stdlib gzip. Its output is a bare gzip stream with no
// extra framing, byte-identical to what the column store wrote before the
// codec seam existed, which is what keeps old directories readable and
// new gzip-written files readable by old binaries.
type gzipCodec struct{}

func (gzipCodec) Name() string { return "gzip" }
func (gzipCodec) ID() byte     { return IDGzip }

// GzipLevelValid reports whether level is accepted by gzip.NewWriterLevel.
// The column store validates Config.CompressionLevel against this before
// the first flush so a bad level surfaces at Open, not mid-flush.
func GzipLevelValid(level int) bool {
	return level >= gzip.HuffmanOnly && level <= gzip.BestCompression
}

// gzwPools pools one *gzip.Writer per compression level: Reset only
// restores the level the writer was created with, so levels cannot share
// a pool. Index is level-gzip.HuffmanOnly (HuffmanOnly is -2).
var gzwPools [gzip.BestCompression - gzip.HuffmanOnly + 1]sync.Pool

// GrabGzipWriter returns a pooled gzip writer reset to w at the given
// level. Callers must pass the writer to ReleaseGzipWriter after Close.
// Exported because the column store also gzips its manifest.
func GrabGzipWriter(w io.Writer, level int) (*gzip.Writer, error) {
	if !GzipLevelValid(level) {
		return nil, fmt.Errorf("codec: invalid gzip level %d", level)
	}
	pool := &gzwPools[level-gzip.HuffmanOnly]
	if zw, ok := pool.Get().(*gzip.Writer); ok {
		zw.Reset(w)
		return zw, nil
	}
	zw, err := gzip.NewWriterLevel(w, level)
	if err != nil {
		return nil, err
	}
	return zw, nil
}

// ReleaseGzipWriter returns a writer obtained from GrabGzipWriter to its
// level's pool.
func ReleaseGzipWriter(zw *gzip.Writer, level int) {
	if !GzipLevelValid(level) {
		return
	}
	gzwPools[level-gzip.HuffmanOnly].Put(zw)
}

// gzrPool pools gzip readers across decompressions; Reset re-arms them
// for a new stream.
var gzrPool sync.Pool

// GrabGzipReader returns a pooled gzip reader reset to r.
func GrabGzipReader(r io.Reader) (*gzip.Reader, error) {
	if zr, ok := gzrPool.Get().(*gzip.Reader); ok {
		if err := zr.Reset(r); err != nil {
			gzrPool.Put(zr)
			return nil, err
		}
		return zr, nil
	}
	return gzip.NewReader(r)
}

// ReleaseGzipReader returns a reader obtained from GrabGzipReader to the
// pool.
func ReleaseGzipReader(zr *gzip.Reader) { gzrPool.Put(zr) }

// sliceWriter adapts append-to-slice to io.Writer so the pooled streaming
// gzip writer can produce the same bytes it streamed to files before.
type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

func (gzipCodec) Compress(dst, src []byte, level int) ([]byte, error) {
	sw := &sliceWriter{b: dst}
	zw, err := GrabGzipWriter(sw, level)
	if err != nil {
		return dst, err
	}
	if _, err := zw.Write(src); err != nil {
		ReleaseGzipWriter(zw, level)
		return dst, err
	}
	if err := zw.Close(); err != nil {
		ReleaseGzipWriter(zw, level)
		return dst, err
	}
	ReleaseGzipWriter(zw, level)
	return sw.b, nil
}

func (gzipCodec) Decompress(dst, src []byte) ([]byte, error) {
	zr, err := GrabGzipReader(bytes.NewReader(src))
	if err != nil {
		return dst, err
	}
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := zr.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			ReleaseGzipReader(zr)
			return dst, err
		}
	}
	err = zr.Close()
	ReleaseGzipReader(zr)
	return dst, err
}
