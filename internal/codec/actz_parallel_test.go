package codec

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

// pinActzWorkers sets the fan-out knob for one test and restores it.
func pinActzWorkers(t testing.TB, n int) {
	t.Helper()
	prev := SetActzWorkers(n)
	t.Cleanup(func() { SetActzWorkers(prev) })
}

// bigMixedImage builds a multi-megabyte image that cycles through the
// store's stream shapes, so a parallel run covers every block mode (raw,
// sparse, shuffle+LZ+huff, ...) across many 128 KiB blocks.
func bigMixedImage(t testing.TB, blocks int) []byte {
	t.Helper()
	shapes := testStreams(t)
	order := []string{"f16-interleaved", "threshold-sparse", "kbit-uniform", "zeros", "text", "same-byte"}
	var img []byte
	for len(img) < blocks*actzMaxBlock {
		img = append(img, shapes[order[(len(img)/actzMaxBlock)%len(order)]]...)
	}
	return img[:blocks*actzMaxBlock+17] // odd tail: one short final block
}

// TestActzParallelMatchesSerial: the parallel block paths must be
// bit-identical to the serial baseline in both directions, for every
// stream shape and for a large mixed image.
func TestActzParallelMatchesSerial(t *testing.T) {
	c := MustByID(IDActz)
	srcs := testStreams(t)
	srcs["mixed-large"] = bigMixedImage(t, 24)

	for name, src := range srcs {
		serialComp := func() []byte {
			pinActzWorkers(t, 1)
			comp, err := c.Compress(nil, src, 0)
			if err != nil {
				t.Fatalf("%s: serial compress: %v", name, err)
			}
			return comp
		}()
		pinActzWorkers(t, 8)
		parComp, err := c.Compress(nil, src, 0)
		if err != nil {
			t.Fatalf("%s: parallel compress: %v", name, err)
		}
		if !bytes.Equal(serialComp, parComp) {
			t.Fatalf("%s: parallel compress output differs from serial (%d vs %d bytes)",
				name, len(serialComp), len(parComp))
		}
		got, err := c.Decompress(nil, parComp)
		if err != nil {
			t.Fatalf("%s: parallel decompress: %v", name, err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("%s: parallel round trip changed data", name)
		}
		// Appending semantics: an existing dst prefix must survive.
		prefix := []byte("prefix-bytes")
		got, err = c.Decompress(append([]byte(nil), prefix...), parComp)
		if err != nil {
			t.Fatalf("%s: decompress with prefix: %v", name, err)
		}
		if !bytes.Equal(got[:len(prefix)], prefix) || !bytes.Equal(got[len(prefix):], src) {
			t.Fatalf("%s: decompress with prefix corrupted output", name)
		}
	}
}

// TestActzParallelCorrupt: on corrupted multi-block streams the parallel
// path must behave exactly like the serial one — agree on error-vs-ok,
// agree on output when both accept, and never panic. (Payload bit flips
// that survive without error are legitimate: integrity is the partition
// CRC's job one layer up; the codec only validates structure.)
func TestActzParallelCorrupt(t *testing.T) {
	c := MustByID(IDActz)
	src := bigMixedImage(t, 8)
	pinActzWorkers(t, 8)
	comp, err := c.Compress(nil, src, 0)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	sawError := false
	for trial := 0; trial < 200; trial++ {
		bad := append([]byte(nil), comp...)
		switch trial % 3 {
		case 0: // flip a bit
			bad[rng.Intn(len(bad))] ^= 1 << uint(rng.Intn(8))
		case 1: // truncate
			bad = bad[:rng.Intn(len(bad))]
		case 2: // trailing garbage
			bad = append(bad, byte(rng.Intn(256)), byte(rng.Intn(256)))
		}
		if bytes.Equal(bad, comp) {
			continue
		}
		parOut, parErr := c.Decompress(nil, bad)
		serOut, serErr := func() ([]byte, error) {
			pinActzWorkers(t, 1)
			defer pinActzWorkers(t, 8)
			return c.Decompress(nil, bad)
		}()
		if (parErr == nil) != (serErr == nil) {
			t.Fatalf("trial %d: parallel err %v, serial err %v", trial, parErr, serErr)
		}
		if parErr == nil && !bytes.Equal(parOut, serOut) {
			t.Fatalf("trial %d: parallel and serial outputs diverge on accepted stream", trial)
		}
		sawError = sawError || parErr != nil
	}
	if !sawError {
		t.Fatal("no corruption trial produced an error — mutations too weak")
	}
}

// TestActzParallelConcurrentUse hammers one codec value from many
// goroutines at once — the pool, the worker knob, and the nested ForEach
// fan-out must all be race-free (run under -race in CI).
func TestActzParallelConcurrentUse(t *testing.T) {
	c := MustByID(IDActz)
	pinActzWorkers(t, 4)
	src := bigMixedImage(t, 6)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Stagger inputs so goroutines exercise different block counts.
			mine := src[:len(src)-g*actzMaxBlock/2]
			for iter := 0; iter < 3; iter++ {
				comp, err := c.Compress(nil, mine, 0)
				if err != nil {
					errs <- err
					return
				}
				got, err := c.Decompress(nil, comp)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, mine) {
					errs <- errActzCorrupt
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent round trip: %v", err)
	}
}
