package codec

import (
	"bytes"
	"testing"
)

// FuzzActzDecode feeds arbitrary bytes to the actz container decoder: it
// must either error or return bytes, never panic, and never return more
// than the framing's own rawLen accounting allows.
func FuzzActzDecode(f *testing.F) {
	c := MustByID(IDActz)
	seedSrcs := [][]byte{
		bytes.Repeat([]byte{0}, 4096),
		bytes.Repeat([]byte("abcd"), 1024),
		{1, 2, 3},
	}
	for _, src := range seedSrcs {
		comp, err := c.Compress(nil, src, 0)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(comp)
		f.Add(comp[:len(comp)/2])
	}
	f.Add([]byte{amHuff, 0x80, 0x01, 0x02})
	f.Add([]byte{amLZHuff | amShuffle, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := c.Decompress(nil, data)
		if err != nil {
			return
		}
		// Whatever decoded must itself re-encode and decode stably.
		comp, cerr := c.Compress(nil, out, 0)
		if cerr != nil {
			t.Fatalf("re-compress decoded output: %v", cerr)
		}
		again, derr := c.Decompress(nil, comp)
		if derr != nil || !bytes.Equal(again, out) {
			t.Fatalf("re-round-trip failed: err=%v", derr)
		}
	})
}

// FuzzActzRoundTrip: every input must compress and decompress back to
// itself exactly, under every registered codec.
func FuzzActzRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x42})
	f.Add(bytes.Repeat([]byte{0, 1}, 2048))
	f.Add(bytes.Repeat([]byte{0}, 1<<13))
	f.Fuzz(func(t *testing.T, src []byte) {
		for _, name := range []string{"store", "actz", "gzip"} {
			c, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			comp, err := c.Compress(nil, src, 1)
			if err != nil {
				t.Fatalf("%s compress: %v", name, err)
			}
			got, err := c.Decompress(nil, comp)
			if err != nil {
				t.Fatalf("%s decompress own output: %v", name, err)
			}
			if !bytes.Equal(got, src) {
				t.Fatalf("%s round trip changed data", name)
			}
		}
	})
}

// FuzzHuffDecode targets the entropy decoder alone — the layer with the
// bit-twiddling (LUT fill, Kraft check, bit-buffer refills) most likely
// to hide an out-of-bounds read.
func FuzzHuffDecode(f *testing.F) {
	valid, ok := huffCompress(nil, bytes.Repeat([]byte("aaab"), 4096))
	if !ok {
		f.Fatal("seed compress bailed")
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := huffDecompress(nil, data, actzMaxBlock)
		if err == nil && len(out) > actzMaxBlock {
			t.Fatalf("decoded past maxOut: %d", len(out))
		}
	})
}

// FuzzLZDecode targets the match decoder: offsets, lengths, and the
// overlap-copy path.
func FuzzLZDecode(f *testing.F) {
	valid, ok := lzCompress(nil, bytes.Repeat([]byte("abcdabcd--"), 2048))
	if !ok {
		f.Fatal("seed compress bailed")
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/3])
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := lzDecompress(nil, data, actzMaxBlock)
		if err == nil && len(out) > actzMaxBlock {
			t.Fatalf("decoded past maxOut: %d", len(out))
		}
	})
}
