package codec

import (
	"bytes"
	"compress/gzip"
	"io"
	"math"
	"math/rand"
	"testing"
)

// testStreams builds the byte-stream shapes the store actually writes,
// plus adversarial shapes the codecs must survive.
func testStreams(t testing.TB) map[string][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	streams := map[string][]byte{
		"empty":    {},
		"one-byte": {0x42},
		"tiny":     []byte("hello"),
	}

	// f16-like: interleaved lo/hi halves of half-precision floats — the LP
	// stream shape (low bytes noisy, high bytes clustered).
	f16 := make([]byte, 64*1024)
	for i := 0; i < len(f16); i += 2 {
		v := uint16(math.Float32bits(float32(rng.NormFloat64())) >> 16)
		f16[i] = byte(v)
		f16[i+1] = byte(v >> 8)
	}
	streams["f16-interleaved"] = f16

	// kbit-like: near-uniform 8-bit quantile bins (incompressible-ish).
	kbit := make([]byte, 96*1024)
	rng.Read(kbit)
	streams["kbit-uniform"] = kbit

	// threshold-like: sparse bitmap, long zero runs with rare set bits.
	thr := make([]byte, 48*1024)
	for i := 0; i < len(thr); i += 200 + rng.Intn(100) {
		thr[i] = 1 << uint(rng.Intn(8))
	}
	streams["threshold-sparse"] = thr

	// All-zero and all-same: degenerate single-symbol alphabets.
	streams["zeros"] = make([]byte, 32*1024)
	same := make([]byte, 32*1024)
	for i := range same {
		same[i] = 0xA7
	}
	streams["same-byte"] = same

	// Text-ish: repetitive structure, good for LZ.
	var text bytes.Buffer
	for text.Len() < 40*1024 {
		text.WriteString("partition_00000042.bin.gz chunk crc32c kbit threshold ")
	}
	streams["text"] = text.Bytes()

	// Sizes that straddle the actz block boundary.
	for _, n := range []int{1 << 17, 1<<17 - 1, 1<<17 + 1, 3 * (1 << 17), 2<<17 + 17} {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(i>>3) ^ byte(i>>11)
		}
		streams[atSize(n)] = b
	}
	return streams
}

func atSize(n int) string { return "boundary-" + itoa(n) }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestRegistry checks name/ID lookup for all built-in codecs and the
// error paths for unknown ones.
func TestRegistry(t *testing.T) {
	for _, want := range []struct {
		name string
		id   byte
	}{{"gzip", IDGzip}, {"store", IDStore}, {"actz", IDActz}} {
		c, err := ByName(want.name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", want.name, err)
		}
		if c.Name() != want.name || c.ID() != want.id {
			t.Fatalf("ByName(%q) = (%q, %d), want (%q, %d)", want.name, c.Name(), c.ID(), want.name, want.id)
		}
		c2, err := ByID(want.id)
		if err != nil {
			t.Fatalf("ByID(%d): %v", want.id, err)
		}
		if c2.Name() != want.name {
			t.Fatalf("ByID(%d).Name() = %q, want %q", want.id, c2.Name(), want.name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName(nope) succeeded")
	}
	if _, err := ByID(0x7f); err == nil {
		t.Fatal("ByID(0x7f) succeeded")
	}
	names := Names()
	if len(names) < 3 {
		t.Fatalf("Names() = %v, want at least gzip/store/actz", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
}

// TestRoundTripAllCodecs round-trips every stream shape through every
// registered codec, with both nil and preloaded dst slices (the append
// contract: existing dst bytes must be preserved).
func TestRoundTripAllCodecs(t *testing.T) {
	streams := testStreams(t)
	for _, name := range []string{"gzip", "store", "actz"} {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			for sname, src := range streams {
				comp, err := c.Compress(nil, src, gzip.BestSpeed)
				if err != nil {
					t.Fatalf("%s compress: %v", sname, err)
				}
				got, err := c.Decompress(nil, comp)
				if err != nil {
					t.Fatalf("%s decompress: %v", sname, err)
				}
				if !bytes.Equal(got, src) {
					t.Fatalf("%s: round trip changed data (%d -> %d bytes)", sname, len(src), len(got))
				}

				// Append contract: both directions must preserve a prefix.
				prefix := []byte("PFX!")
				comp2, err := c.Compress(append([]byte(nil), prefix...), src, gzip.BestSpeed)
				if err != nil {
					t.Fatalf("%s compress with prefix: %v", sname, err)
				}
				if !bytes.HasPrefix(comp2, prefix) {
					t.Fatalf("%s: Compress clobbered dst prefix", sname)
				}
				got2, err := c.Decompress(append([]byte(nil), prefix...), comp2[len(prefix):])
				if err != nil {
					t.Fatalf("%s decompress with prefix: %v", sname, err)
				}
				if !bytes.HasPrefix(got2, prefix) || !bytes.Equal(got2[len(prefix):], src) {
					t.Fatalf("%s: Decompress broke append contract", sname)
				}
			}
		})
	}
}

// TestGzipCodecByteCompat locks the gzip codec to the legacy on-disk
// framing: output must be a bare gzip stream that a plain gzip.Reader
// accepts, and the codec must decompress a stream written by a plain
// gzip.Writer — both directions, so files written before the codec
// refactor stay byte-compatible.
func TestGzipCodecByteCompat(t *testing.T) {
	c := MustByID(IDGzip)
	src := testStreams(t)["text"]

	comp, err := c.Compress(nil, src, gzip.BestSpeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) < 2 || comp[0] != 0x1f || comp[1] != 0x8b {
		t.Fatalf("gzip codec output is not a bare gzip stream: % x", comp[:2])
	}
	zr, err := gzip.NewReader(bytes.NewReader(comp))
	if err != nil {
		t.Fatalf("stdlib reader rejected codec output: %v", err)
	}
	plain, err := io.ReadAll(zr)
	if err != nil || !bytes.Equal(plain, src) {
		t.Fatalf("stdlib decode of codec output: err=%v, equal=%v", err, bytes.Equal(plain, src))
	}

	var buf bytes.Buffer
	zw, _ := gzip.NewWriterLevel(&buf, gzip.BestCompression)
	zw.Write(src)
	zw.Close()
	got, err := c.Decompress(nil, buf.Bytes())
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("codec decode of stdlib output: err=%v, equal=%v", err, bytes.Equal(got, src))
	}
}

// TestGzipLevelValidation: the gzip codec must reject levels outside the
// flate range instead of writing with a surprise default.
func TestGzipLevelValidation(t *testing.T) {
	c := MustByID(IDGzip)
	if _, err := c.Compress(nil, []byte("x"), 42); err == nil {
		t.Fatal("gzip Compress accepted level 42")
	}
	if GzipLevelValid(42) || !GzipLevelValid(gzip.BestSpeed) {
		t.Fatal("GzipLevelValid wrong")
	}
}

// TestDecompressGarbage feeds non-stream bytes to every codec's
// Decompress: must error (except store, which is identity), never panic.
func TestDecompressGarbage(t *testing.T) {
	garbage := [][]byte{
		{},
		{0x00},
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		bytes.Repeat([]byte{0x80}, 1024), // unterminated uvarints
	}
	for _, name := range []string{"gzip", "actz"} {
		c, _ := ByName(name)
		for i, g := range garbage {
			if len(g) == 0 && name == "actz" {
				continue // zero blocks = empty payload, legal
			}
			if _, err := c.Decompress(nil, g); err == nil {
				t.Errorf("%s: garbage %d decoded without error", name, i)
			}
		}
	}
}
