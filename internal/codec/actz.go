package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"mistique/internal/parallel"
)

func init() { Register(actzCodec{}) }

// actzCodec is the activation-tuned codec. The partition image is split
// into 128 KiB blocks; each block independently picks the cheapest of
// raw / LZ / Huffman / LZ+Huffman, optionally behind a stride-2 byte
// shuffle, and a one-byte mode header records the choice so decode does
// only the work encode paid for:
//
//   - f16/LP pages interleave low (near-uniform mantissa) and high
//     (concentrated sign+exponent) bytes; the shuffle separates the two
//     populations so the entropy stage sees each alone.
//   - THRESHOLD bitmaps are almost entirely zero bytes with isolated set
//     bits; the sparse coder stores only (gap, literal) pairs for the
//     nonzero bytes, then entropy-codes the pairs — the byte-aligned LZ
//     cannot touch deflate here, but gap coding can.
//   - KBIT quantile bins are near-equiprobable by construction (the bins
//     are built to hold equal mass), so nothing helps; the raw mode costs
//     one branch and a copy.
//
// Block layout, repeated:
//
//	byte     mode       low 3 bits: 0 raw, 1 huff, 2 lz, 3 lz+huff,
//	                    4 sparse, 5 sparse+huff; bit 3: stride-2 shuffle
//	                    applied before coding (raw and sparse never carry
//	                    it)
//	uvarint  rawLen     decoded block length (<= actzMaxBlock)
//	uvarint  encLen     payload length (<= rawLen; == rawLen for raw)
//	encLen B payload
const (
	actzMaxBlock = 1 << 17

	amRaw        = 0
	amHuff       = 1
	amLZ         = 2
	amLZHuff     = 3
	amSparse     = 4
	amSparseHuff = 5
	amCoder      = 7 // mask for the coder bits
	amShuffle    = 8
)

var errActzCorrupt = errors.New("codec: corrupt actz stream")

// actzScratchPool holds block-sized work buffers shared by the shuffle,
// LZ, and Huffman stages.
var actzScratchPool = sync.Pool{New: func() any {
	b := make([]byte, 0, actzMaxBlock+actzMaxBlock/8+64)
	return &b
}}

func grabActzScratch() *[]byte     { return actzScratchPool.Get().(*[]byte) }
func releaseActzScratch(b *[]byte) { actzScratchPool.Put(b) }

type actzCodec struct{}

func (actzCodec) Name() string { return "actz" }
func (actzCodec) ID() byte     { return IDActz }

// actzWorkers is the per-image fan-out knob for the block stages. Blocks
// are independent 128 KiB units, so a large partition image compresses
// and decompresses across cores without changing a single output byte.
// 0 (the default) resolves to GOMAXPROCS; 1 pins the serial path, which
// benchmarks use as the before/after baseline.
var actzWorkers atomic.Int32

// SetActzWorkers sets the actz codec's per-image fan-out and returns the
// previous setting. n <= 0 restores the default (GOMAXPROCS); n == 1
// forces serial block coding.
func SetActzWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(actzWorkers.Swap(int32(n)))
}

// actzFanout resolves the worker count for an image of nBlocks blocks:
// single-block images (the common small-partition case) stay serial so
// they pay zero scheduling overhead.
func actzFanout(nBlocks int) int {
	if nBlocks < 2 {
		return 1
	}
	w := parallel.Workers(int(actzWorkers.Load()))
	if w > nBlocks {
		w = nBlocks
	}
	return w
}

func (actzCodec) Compress(dst, src []byte, _ int) ([]byte, error) {
	nBlocks := (len(src) + actzMaxBlock - 1) / actzMaxBlock
	if workers := actzFanout(nBlocks); workers > 1 {
		return actzCompressParallel(dst, src, nBlocks, workers), nil
	}
	for len(src) > 0 {
		blk := src
		if len(blk) > actzMaxBlock {
			blk = blk[:actzMaxBlock]
		}
		src = src[len(blk):]
		dst = actzCompressBlock(dst, blk)
	}
	return dst, nil
}

// actzCompressParallel encodes every block concurrently into pooled
// scratch, then stitches the results in block order — byte-identical to
// the serial path, since each block's encoding depends only on the block.
func actzCompressParallel(dst, src []byte, nBlocks, workers int) []byte {
	outs := make([][]byte, nBlocks)
	bufs := make([]*[]byte, nBlocks)
	parallel.ForEach(nBlocks, workers, func(i int) error {
		blk := src[i*actzMaxBlock:]
		if len(blk) > actzMaxBlock {
			blk = blk[:actzMaxBlock]
		}
		bufs[i] = grabActzScratch()
		outs[i] = actzCompressBlock((*bufs[i])[:0], blk)
		return nil
	})
	for i := range outs {
		dst = append(dst, outs[i]...)
		*bufs[i] = outs[i]
		releaseActzScratch(bufs[i])
	}
	return dst
}

func actzCompressBlock(dst, blk []byte) []byte {
	if len(blk) < 64 {
		return actzEmit(dst, amRaw, blk, len(blk))
	}
	// Sparse candidate first: one word-skipping count decides, and a clear
	// win (THRESHOLD bitmaps) skips the much costlier shuffle/LZ/Huffman
	// attempts entirely.
	spFinal, spMode := []byte(nil), -1
	spBuf := grabActzScratch()
	defer releaseActzScratch(spBuf)
	if sp, ok := sparseCompress((*spBuf)[:0], blk); ok {
		spFinal, spMode = sp, amSparse
		shBuf := grabActzScratch()
		defer releaseActzScratch(shBuf)
		if h, ok := huffCompress((*shBuf)[:0], sp); ok && len(h) < len(sp) {
			spFinal, spMode = h, amSparseHuff
		}
		if len(spFinal)*8 < len(blk) {
			return actzEmit(dst, spMode, spFinal, len(blk))
		}
	}
	shuf, compressible := analyzeBlock(blk)
	if !compressible {
		// Near-uniform block: LZ and Huffman cannot clear the
		// minimum-gain bar, so don't pay for the attempts. The sparse
		// candidate (if any) still competes against that same bar.
		if spMode >= 0 && len(spFinal) < len(blk)-len(blk)/32 {
			return actzEmit(dst, spMode, spFinal, len(blk))
		}
		return actzEmit(dst, amRaw, blk, len(blk))
	}
	mode := amRaw
	input := blk
	var shufBuf *[]byte
	if shuf {
		shufBuf = grabActzScratch()
		defer releaseActzScratch(shufBuf)
		input = shuffle2((*shufBuf)[:0], blk)
		mode = amShuffle
	}
	// Stage 1: LZ over the (possibly shuffled) block.
	lzBuf := grabActzScratch()
	defer releaseActzScratch(lzBuf)
	pre, preMode := input, mode
	if lz, ok := lzCompress((*lzBuf)[:0], input); ok {
		pre, preMode = lz, mode|amLZ
	}
	// Stage 2: order-0 entropy over whatever stage 1 produced.
	hBuf := grabActzScratch()
	defer releaseActzScratch(hBuf)
	final, finalMode := pre, preMode
	if h, ok := huffCompress((*hBuf)[:0], pre); ok && len(h) < len(pre) {
		final, finalMode = h, preMode|amHuff
	}
	if spMode >= 0 && len(spFinal) < len(final) {
		final, finalMode = spFinal, spMode
	}
	// Nothing won by at least ~3%: store the original bytes so decode is a
	// straight copy. The bar matters as much as the comparison — a KBIT
	// block whose entropy coding shaves 1% would cost a 10x slower decode
	// for nothing. (A "raw but shuffled" block would be the same size for
	// extra work, so the encoder never emits one and the decoder rejects
	// it — same for sparse+shuffle.)
	if len(final) >= len(blk)-len(blk)/32 {
		return actzEmit(dst, amRaw, blk, len(blk))
	}
	return actzEmit(dst, finalMode, final, len(blk))
}

// sparseCompress appends the gap-coded form of src to dst, or returns
// dst unchanged with ok=false when src is not zero-dominated enough to
// win. Layout: uvarint(count of nonzero bytes), then per nonzero byte a
// uvarint gap (zero bytes skipped since the previous literal) followed by
// the literal itself; trailing zeros are implied by the block's rawLen.
// On ok the output is strictly shorter than src, which lets the decoder
// use rawLen to bound the entropy stage of a sparse+huff block.
func sparseCompress(dst, src []byte) ([]byte, bool) {
	if len(src) < 64 {
		return dst, false
	}
	nz := countNonzero(src)
	// Each nonzero byte costs >= 2 output bytes; bail unless zeros
	// dominate enough that even the worst case is a clear win.
	if nz*3 > len(src) {
		return dst, false
	}
	start := len(dst)
	dst = binary.AppendUvarint(dst, uint64(nz))
	i, prev := 0, 0
	for i < len(src) {
		if src[i] == 0 {
			// Zero runs dominate by construction: skip them a word at a
			// time (this loop IS the encoder's cost on a bitmap block).
			for i+8 <= len(src) && load64(src, i) == 0 {
				i += 8
			}
			for i < len(src) && src[i] == 0 {
				i++
			}
			continue
		}
		dst = binary.AppendUvarint(dst, uint64(i-prev))
		dst = append(dst, src[i])
		i++
		prev = i
	}
	if len(dst)-start >= len(src) {
		return dst[:start], false
	}
	return dst, true
}

// countNonzero counts nonzero bytes, skipping zero words eight at a time.
func countNonzero(b []byte) int {
	n, i := 0, 0
	for ; i+8 <= len(b); i += 8 {
		if load64(b, i) == 0 {
			continue
		}
		for j := i; j < i+8; j++ {
			if b[j] != 0 {
				n++
			}
		}
	}
	for ; i < len(b); i++ {
		if b[i] != 0 {
			n++
		}
	}
	return n
}

// sparseDecompress inverts sparseCompress, appending exactly rawLen bytes
// to dst or erroring on any inconsistency (bad varints, overrun, trailing
// garbage).
func sparseDecompress(dst, src []byte, rawLen int) ([]byte, error) {
	nz64, k := binary.Uvarint(src)
	if k <= 0 || nz64 > uint64(rawLen) {
		return dst, fmt.Errorf("%w: sparse count", errActzCorrupt)
	}
	src = src[k:]
	base := len(dst)
	for i := uint64(0); i < nz64; i++ {
		gap, k := binary.Uvarint(src)
		if k <= 0 || len(src) < k+1 {
			return dst, fmt.Errorf("%w: sparse gap", errActzCorrupt)
		}
		lit := src[k]
		src = src[k+1:]
		if lit == 0 || uint64(len(dst)-base)+gap+1 > uint64(rawLen) {
			return dst, fmt.Errorf("%w: sparse overrun", errActzCorrupt)
		}
		dst = appendZeros(dst, int(gap))
		dst = append(dst, lit)
	}
	if len(src) != 0 {
		return dst, fmt.Errorf("%w: sparse trailing bytes", errActzCorrupt)
	}
	return appendZeros(dst, rawLen-(len(dst)-base)), nil
}

// zeroChunk feeds appendZeros: bulk-appending beats byte-at-a-time by the
// width of a memmove.
var zeroChunk [4096]byte

func appendZeros(dst []byte, n int) []byte {
	for n > len(zeroChunk) {
		dst = append(dst, zeroChunk[:]...)
		n -= len(zeroChunk)
	}
	return append(dst, zeroChunk[:n]...)
}

func actzEmit(dst []byte, mode int, payload []byte, rawLen int) []byte {
	dst = append(dst, byte(mode))
	dst = binary.AppendUvarint(dst, uint64(rawLen))
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// actzBlock is one parsed container frame: everything the decode stage
// needs to reproduce the block independently of its neighbours.
type actzBlock struct {
	coder    int
	shuffled bool
	payload  []byte
	off      int // decoded offset of this block within the image
	rawLen   int
}

// actzScanBlocks walks the frame headers (strictly sequential — frames
// are back to back) and returns the block table plus the total decoded
// size, rejecting every malformed header the way the decoder always has.
func actzScanBlocks(src []byte) ([]actzBlock, int, error) {
	blocks := make([]actzBlock, 0, (len(src)+actzMaxBlock-1)/actzMaxBlock)
	total := 0
	for len(src) > 0 {
		mode := int(src[0])
		src = src[1:]
		coder := mode & amCoder
		switch {
		case mode&^(amCoder|amShuffle) != 0,
			coder > amSparseHuff,
			coder == amRaw && mode&amShuffle != 0,
			coder&amSparse != 0 && mode&amShuffle != 0:
			return nil, 0, fmt.Errorf("%w: mode byte %#x", errActzCorrupt, mode)
		}
		rawLen64, k := binary.Uvarint(src)
		if k <= 0 || rawLen64 == 0 || rawLen64 > actzMaxBlock {
			return nil, 0, fmt.Errorf("%w: bad raw length", errActzCorrupt)
		}
		src = src[k:]
		rawLen := int(rawLen64)
		encLen64, k := binary.Uvarint(src)
		if k <= 0 || encLen64 > uint64(rawLen) || encLen64 > uint64(len(src)-k) {
			return nil, 0, fmt.Errorf("%w: bad payload length", errActzCorrupt)
		}
		src = src[k:]
		blocks = append(blocks, actzBlock{
			coder: coder, shuffled: mode&amShuffle != 0,
			payload: src[:encLen64], off: total, rawLen: rawLen,
		})
		total += rawLen
		src = src[encLen64:]
	}
	return blocks, total, nil
}

func (actzCodec) Decompress(dst, src []byte) ([]byte, error) {
	blocks, total, err := actzScanBlocks(src)
	if err != nil {
		return dst, err
	}
	if workers := actzFanout(len(blocks)); workers > 1 {
		return actzDecompressParallel(dst, blocks, total, workers)
	}
	for _, b := range blocks {
		if dst, err = actzDecodeBlock(dst, b.coder, b.shuffled, b.payload, b.rawLen); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// actzDecompressParallel decodes blocks concurrently, each appending into
// its own pre-sized region of dst. Every coder validates its decoded
// length against rawLen, so a successful block fills exactly its region;
// the zero-length full-capacity sub-slices mean a hypothetical over-long
// decode reallocates away from dst instead of clobbering a neighbour, and
// the length check then rejects it.
func actzDecompressParallel(dst []byte, blocks []actzBlock, total, workers int) ([]byte, error) {
	base := len(dst)
	if cap(dst)-base < total {
		grown := make([]byte, base, base+total)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:base+total]
	err := parallel.ForEach(len(blocks), workers, func(i int) error {
		b := blocks[i]
		seg := dst[base+b.off : base+b.off : base+b.off+b.rawLen]
		out, err := actzDecodeBlock(seg, b.coder, b.shuffled, b.payload, b.rawLen)
		if err != nil {
			return err
		}
		if len(out) != b.rawLen {
			return fmt.Errorf("%w: block length mismatch", errActzCorrupt)
		}
		return nil
	})
	if err != nil {
		return dst[:base], err
	}
	return dst, nil
}

func actzDecodeBlock(dst []byte, coder int, shuffled bool, payload []byte, rawLen int) ([]byte, error) {
	if coder == amRaw {
		if len(payload) != rawLen {
			return dst, fmt.Errorf("%w: raw block length mismatch", errActzCorrupt)
		}
		return append(dst, payload...), nil
	}
	if coder&amSparse != 0 {
		stream := payload
		var hBuf *[]byte
		if coder&amHuff != 0 {
			// sparseCompress guarantees its output is shorter than rawLen,
			// so rawLen bounds the entropy stage here too.
			hBuf = grabActzScratch()
			defer releaseActzScratch(hBuf)
			out, err := huffDecompress((*hBuf)[:0], stream, rawLen)
			if err != nil {
				return dst, err
			}
			*hBuf = out
			stream = out
		}
		return sparseDecompress(dst, stream, rawLen)
	}
	// Huffman first (it is the outermost stage), then LZ, then unshuffle.
	// Intermediate results land in pooled scratch unless they are the
	// final bytes, which decode straight into dst.
	var hBuf, lzBuf *[]byte
	defer func() {
		if hBuf != nil {
			releaseActzScratch(hBuf)
		}
		if lzBuf != nil {
			releaseActzScratch(lzBuf)
		}
	}()
	stream := payload
	if coder&amHuff != 0 {
		// The LZ encoder guarantees its output is shorter than rawLen, so
		// rawLen bounds the huffman stage in both layouts.
		if coder&amLZ != 0 || shuffled {
			hBuf = grabActzScratch()
			out, err := huffDecompress((*hBuf)[:0], stream, rawLen)
			if err != nil {
				return dst, err
			}
			*hBuf = out
			stream = out
		} else {
			out, err := huffDecompress(dst, stream, rawLen)
			if err != nil {
				return dst, err
			}
			if len(out)-len(dst) != rawLen {
				return dst, fmt.Errorf("%w: huffman block length mismatch", errActzCorrupt)
			}
			return out, nil
		}
	}
	if coder&amLZ != 0 {
		if shuffled {
			lzBuf = grabActzScratch()
			out, err := lzDecompress((*lzBuf)[:0], stream, rawLen)
			if err != nil {
				return dst, err
			}
			if len(out) != rawLen {
				return dst, fmt.Errorf("%w: lz block length mismatch", errActzCorrupt)
			}
			*lzBuf = out
			stream = out
		} else {
			out, err := lzDecompress(dst, stream, rawLen)
			if err != nil {
				return dst, err
			}
			if len(out)-len(dst) != rawLen {
				return dst, fmt.Errorf("%w: lz block length mismatch", errActzCorrupt)
			}
			return out, nil
		}
	} else if len(stream) != rawLen {
		// huff-only + shuffle: the decoded stream is the shuffled block.
		return dst, fmt.Errorf("%w: huffman block length mismatch", errActzCorrupt)
	}
	return unshuffle2(dst, stream), nil
}

// analyzeBlock samples the block's even- and odd-offset byte histograms
// once and answers two questions. First, whether a stride-2 shuffle
// would lower entropy enough to matter — the signature of interleaved
// f16 lo/hi bytes; symbol streams (KBIT, THRESHOLD) have
// parity-independent statistics and skip it. Second, whether the block
// looks compressible at all: order-0 entropy is invariant under the
// shuffle (a permutation), so one sampled histogram bounds what Huffman
// can achieve on either layout, and the split entropies bound what the
// shuffle can expose to LZ. Near-uniform blocks — real KBIT bin streams
// — fail the probe and skip the LZ+Huffman attempts entirely, keeping
// the encoder at memcpy speed where coding could only shave ~1%. The
// probe cannot see long-range repetition of high-entropy material, but
// zero runs — the dominant repetition in activation stores — are
// handled by the sparse coder before this point.
func analyzeBlock(b []byte) (shuffle, compressible bool) {
	if len(b) < 2048 {
		return false, true
	}
	stride := len(b) / 4096
	stride &^= 1 // keep parity while sampling
	if stride < 2 {
		stride = 2
	}
	var even, odd [256]int
	n := 0
	for i := 0; i+1 < len(b); i += stride {
		even[b[i]]++
		odd[b[i+1]]++
		n++
	}
	var all [256]int
	for i := range all {
		all[i] = even[i] + odd[i]
	}
	he := entropyBits(&even, n)
	ho := entropyBits(&odd, n)
	ha := entropyBits(&all, 2*n)
	shuffle = he+ho < 2*ha-0.30
	best := ha
	if s := (he + ho) / 2; s < best {
		best = s
	}
	// Below ~5.5% of order-0 headroom, Huffman's table overhead and
	// 12-bit cap leave nothing over the encoder's 3% minimum-gain bar.
	compressible = best < 7.55
	return shuffle, compressible
}

// entropyBits is the order-0 entropy of the histogram, in bits/byte.
func entropyBits(hist *[256]int, total int) float64 {
	if total == 0 {
		return 0
	}
	h := 0.0
	ft := float64(total)
	for _, c := range hist {
		if c > 0 {
			p := float64(c) / ft
			h -= p * math.Log2(p)
		}
	}
	return h
}

// shuffle2 appends src with even offsets first, then odd offsets: the
// byte-transpose of a [n/2][2]byte matrix. An odd trailing byte belongs
// to the even half.
func shuffle2(dst, src []byte) []byte {
	for i := 0; i < len(src); i += 2 {
		dst = append(dst, src[i])
	}
	for i := 1; i < len(src); i += 2 {
		dst = append(dst, src[i])
	}
	return dst
}

// unshuffle2 inverts shuffle2.
func unshuffle2(dst, src []byte) []byte {
	nEven := (len(src) + 1) / 2
	even, odd := src[:nEven], src[nEven:]
	for i := 0; i < len(odd); i++ {
		dst = append(dst, even[i], odd[i])
	}
	if len(even) > len(odd) {
		dst = append(dst, even[len(even)-1])
	}
	return dst
}
