package codec

import (
	"encoding/binary"
	"errors"
	"sort"
	"sync"
)

// Order-0 canonical Huffman coder in the huff0 spirit: code lengths are
// capped at 12 bits so decode is a single 4096-entry table lookup per
// symbol, the table is shipped as 128 bytes of packed nibbles, and the
// bitstream is written LSB-first so encode and decode are shift/or loops
// with no per-bit branches.
//
// Stream layout:
//
//	uvarint  origLen            number of symbols encoded
//	128 B    code lengths       one nibble per symbol, symbol 0 low nibble
//	...      bitstream          canonical codes, bit-reversed, LSB-first
const (
	huffMaxBits    = 12
	huffTableBytes = 128
)

var errHuffCorrupt = errors.New("codec: corrupt huffman stream")

// huffScratch carries the per-call tables so concurrent encoders and
// decoders do not contend on shared arrays.
type huffScratch struct {
	freq [256]int
	lens [256]uint8
	code [256]uint16 // bit-reversed canonical code
	lut  [1 << huffMaxBits]uint16
}

var huffScratchPool = sync.Pool{New: func() any { return new(huffScratch) }}

// huffCompress appends the entropy-coded form of src to dst, or returns
// dst unchanged with ok=false when the coded form would not be smaller
// (single-symbol degenerate streams still encode: they shrink to ~n/8).
func huffCompress(dst, src []byte) ([]byte, bool) {
	if len(src) == 0 {
		return dst, false
	}
	hs := huffScratchPool.Get().(*huffScratch)
	defer huffScratchPool.Put(hs)
	for i := range hs.freq {
		hs.freq[i] = 0
	}
	for _, b := range src {
		hs.freq[b]++
	}
	if !buildLengths(&hs.freq, &hs.lens) {
		return dst, false
	}
	// Predicted size: ceil(sum freq*len / 8) + header. Bail before paying
	// for the bit loop when entropy coding cannot win.
	bits := 0
	for s, f := range hs.freq {
		bits += f * int(hs.lens[s])
	}
	coded := (bits+7)/8 + huffTableBytes + binary.MaxVarintLen32
	if coded >= len(src) {
		return dst, false
	}
	assignCodes(&hs.lens, &hs.code)

	start := len(dst)
	dst = binary.AppendUvarint(dst, uint64(len(src)))
	for i := 0; i < huffTableBytes; i++ {
		dst = append(dst, hs.lens[2*i]|hs.lens[2*i+1]<<4)
	}
	var acc uint64
	var nbits uint
	for _, b := range src {
		acc |= uint64(hs.code[b]) << nbits
		nbits += uint(hs.lens[b])
		for nbits >= 8 {
			dst = append(dst, byte(acc))
			acc >>= 8
			nbits -= 8
		}
	}
	if nbits > 0 {
		dst = append(dst, byte(acc))
	}
	if len(dst)-start >= len(src) {
		return dst[:start], false
	}
	return dst, true
}

// buildLengths computes length-limited (<=12 bit) Huffman code lengths
// for freq into lens. Returns false when only impractical streams remain
// (it never fails for real input; the loop below always converges because
// halving frequencies flattens the distribution toward uniform, whose
// tree depth is 8).
func buildLengths(freq *[256]int, lens *[256]uint8) bool {
	for {
		if !huffTreeLengths(freq, lens) {
			return false
		}
		maxLen := uint8(0)
		for _, l := range lens {
			if l > maxLen {
				maxLen = l
			}
		}
		if maxLen <= huffMaxBits {
			return true
		}
		// Too deep: flatten the distribution and rebuild.
		for i, f := range freq {
			if f > 0 {
				freq[i] = f/2 + 1
			}
		}
	}
}

// huffTreeLengths runs the two-queue Huffman construction and writes each
// symbol's unlimited code length.
func huffTreeLengths(freq *[256]int, lens *[256]uint8) bool {
	type node struct {
		freq   int
		parent int
	}
	// Leaves first (only symbols with freq>0), internals appended after.
	nodes := make([]node, 0, 512)
	order := make([]int, 0, 256) // node index -> symbol, leaves only
	for s, f := range freq {
		if f > 0 {
			nodes = append(nodes, node{freq: f, parent: -1})
			order = append(order, s)
		}
	}
	nLeaves := len(nodes)
	if nLeaves == 0 {
		return false
	}
	for i := range lens {
		lens[i] = 0
	}
	if nLeaves == 1 {
		lens[order[0]] = 1
		return true
	}
	leafIdx := make([]int, nLeaves)
	for i := range leafIdx {
		leafIdx[i] = i
	}
	sort.Slice(leafIdx, func(a, b int) bool { return nodes[leafIdx[a]].freq < nodes[leafIdx[b]].freq })
	// Two monotone queues: sorted leaves and internal nodes in creation
	// order (their frequencies are non-decreasing).
	li, ii := 0, nLeaves
	pick := func() int {
		if li < nLeaves && (ii >= len(nodes) || nodes[leafIdx[li]].freq <= nodes[ii].freq) {
			li++
			return leafIdx[li-1]
		}
		ii++
		return ii - 1
	}
	for m := 0; m < nLeaves-1; m++ {
		a := pick()
		b := pick()
		nodes = append(nodes, node{freq: nodes[a].freq + nodes[b].freq, parent: -1})
		nodes[a].parent = len(nodes) - 1
		nodes[b].parent = len(nodes) - 1
	}
	for i := 0; i < nLeaves; i++ {
		depth := uint8(0)
		for p := nodes[i].parent; p >= 0; p = nodes[p].parent {
			depth++
		}
		lens[order[i]] = depth
	}
	return true
}

// assignCodes derives canonical codes from lengths and stores them
// bit-reversed for LSB-first emission.
func assignCodes(lens *[256]uint8, code *[256]uint16) {
	var blCount [huffMaxBits + 1]int
	for _, l := range lens {
		blCount[l]++
	}
	var next [huffMaxBits + 1]uint16
	c := uint16(0)
	blCount[0] = 0
	for b := 1; b <= huffMaxBits; b++ {
		c = (c + uint16(blCount[b-1])) << 1
		next[b] = c
	}
	for s := 0; s < 256; s++ {
		l := lens[s]
		if l == 0 {
			continue
		}
		code[s] = reverseBits(next[l], l)
		next[l]++
	}
}

func reverseBits(v uint16, n uint8) uint16 {
	var r uint16
	for i := uint8(0); i < n; i++ {
		r = r<<1 | v&1
		v >>= 1
	}
	return r
}

// huffDecompress appends the decoded symbols to dst. maxOut bounds the
// decoded length so corrupt headers cannot force huge allocations.
func huffDecompress(dst, src []byte, maxOut int) ([]byte, error) {
	origLen, n := binary.Uvarint(src)
	if n <= 0 || origLen > uint64(maxOut) {
		return dst, errHuffCorrupt
	}
	src = src[n:]
	if len(src) < huffTableBytes {
		return dst, errHuffCorrupt
	}
	hs := huffScratchPool.Get().(*huffScratch)
	defer huffScratchPool.Put(hs)
	nSyms := 0
	kraft := 0
	for i := 0; i < huffTableBytes; i++ {
		b := src[i]
		hs.lens[2*i] = b & 0x0f
		hs.lens[2*i+1] = b >> 4
		for _, l := range [2]uint8{b & 0x0f, b >> 4} {
			// A nibble can name lengths 13..15, which the cap forbids;
			// without this check 12-l underflows, the length escapes the
			// Kraft sum, and assignCodes indexes past its arrays.
			if l > huffMaxBits {
				return dst, errHuffCorrupt
			}
			if l > 0 {
				nSyms++
				kraft += 1 << (huffMaxBits - l)
			}
		}
	}
	src = src[huffTableBytes:]
	// Kraft equality rejects tables that are under- or over-subscribed;
	// the single-symbol tree (one length-1 code) is the one legal
	// incomplete shape.
	switch {
	case nSyms == 0:
		return dst, errHuffCorrupt
	case nSyms == 1:
		if kraft != 1<<(huffMaxBits-1) {
			return dst, errHuffCorrupt
		}
	case kraft != 1<<huffMaxBits:
		return dst, errHuffCorrupt
	}
	assignCodes(&hs.lens, &hs.code)
	for i := range hs.lut {
		hs.lut[i] = 0
	}
	for s := 0; s < 256; s++ {
		l := hs.lens[s]
		if l == 0 {
			continue
		}
		entry := uint16(s) | uint16(l)<<8
		for idx := int(hs.code[s]); idx < len(hs.lut); idx += 1 << l {
			hs.lut[idx] = entry
		}
	}
	var acc uint64
	var nbits uint
	pos := 0
	totalBits := 8 * len(src)
	used := 0
	for i := uint64(0); i < origLen; i++ {
		for nbits < huffMaxBits && pos < len(src) {
			acc |= uint64(src[pos]) << nbits
			pos++
			nbits += 8
		}
		e := hs.lut[acc&(1<<huffMaxBits-1)]
		l := uint(e >> 8)
		if l == 0 {
			return dst, errHuffCorrupt
		}
		used += int(l)
		if used > totalBits {
			return dst, errHuffCorrupt
		}
		acc >>= l
		nbits -= l
		dst = append(dst, byte(e))
	}
	return dst, nil
}
