package metadata

import (
	"path/filepath"
	"reflect"
	"testing"
)

func testModel() *Model {
	return &Model{
		Name:          "zillow_p1",
		Kind:          TRAD,
		TotalExamples: 10000,
		Stages: []Stage{
			{Name: "ReadCSV", Index: 0, ExecSeconds: 0.5, OutputColumns: 20},
			{Name: "Join", Index: 1, ExecSeconds: 0.3, OutputColumns: 25},
		},
	}
}

func TestRegisterAndLookup(t *testing.T) {
	db := NewDB()
	if err := db.RegisterModel(testModel()); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterModel(testModel()); err == nil {
		t.Fatal("duplicate model accepted")
	}
	if db.Model("zillow_p1") == nil || db.Model("nope") != nil {
		t.Fatal("Model lookup broken")
	}
	if !reflect.DeepEqual(db.Models(), []string{"zillow_p1"}) {
		t.Fatalf("Models() = %v", db.Models())
	}
}

func TestIntermediates(t *testing.T) {
	db := NewDB()
	db.RegisterModel(testModel())
	it := &Interm{Name: "interm1", StageIndex: 1, Columns: []string{"a", "b"}, Rows: 10000, Blocks: 10}
	if err := db.AddIntermediate("zillow_p1", it); err != nil {
		t.Fatal(err)
	}
	if err := db.AddIntermediate("zillow_p1", &Interm{Name: "interm1"}); err == nil {
		t.Fatal("duplicate intermediate accepted")
	}
	if err := db.AddIntermediate("ghost", &Interm{Name: "x"}); err == nil {
		t.Fatal("unknown model accepted")
	}
	got := db.Intermediate("zillow_p1", "interm1")
	if got == nil || got.Blocks != 10 {
		t.Fatalf("Intermediate lookup: %+v", got)
	}
	if db.Intermediate("zillow_p1", "ghost") != nil || db.Intermediate("ghost", "x") != nil {
		t.Fatal("phantom intermediate")
	}
}

func TestQueryCounting(t *testing.T) {
	db := NewDB()
	db.RegisterModel(testModel())
	// Lazily created on first query.
	n, err := db.RecordQuery("zillow_p1", "pred")
	if err != nil || n != 1 {
		t.Fatalf("first query: n=%d err=%v", n, err)
	}
	n, _ = db.RecordQuery("zillow_p1", "pred")
	if n != 2 {
		t.Fatalf("second query n=%d", n)
	}
	if it := db.Intermediate("zillow_p1", "pred"); it == nil || it.Materialized {
		t.Fatal("lazy intermediate state wrong")
	}
	if _, err := db.RecordQuery("ghost", "pred"); err == nil {
		t.Fatal("unknown model query accepted")
	}
}

func TestSetMaterialized(t *testing.T) {
	db := NewDB()
	db.RegisterModel(testModel())
	db.AddIntermediate("zillow_p1", &Interm{Name: "interm1"})
	if err := db.SetMaterialized("zillow_p1", "interm1", 12345, "LP_QT"); err != nil {
		t.Fatal(err)
	}
	it := db.Intermediate("zillow_p1", "interm1")
	if !it.Materialized || it.StoredBytes != 12345 || it.QuantScheme != "LP_QT" {
		t.Fatalf("materialized state %+v", it)
	}
	if err := db.SetMaterialized("zillow_p1", "ghost", 1, "x"); err == nil {
		t.Fatal("unknown intermediate accepted")
	}
	if err := db.SetMaterialized("ghost", "x", 1, "x"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := NewDB()
	m := testModel()
	db.RegisterModel(m)
	db.AddIntermediate("zillow_p1", &Interm{Name: "interm1", Columns: []string{"x"}, Rows: 5})
	db.RecordQuery("zillow_p1", "interm1")
	db.SetMaterialized("zillow_p1", "interm1", 99, "FULL")

	path := filepath.Join(t.TempDir(), "meta.json")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	it := back.Intermediate("zillow_p1", "interm1")
	if it == nil || it.QueryCount != 1 || it.StoredBytes != 99 || !it.Materialized {
		t.Fatalf("loaded intermediate %+v", it)
	}
	if got := back.Model("zillow_p1"); got.TotalExamples != 10000 || len(got.Stages) != 2 {
		t.Fatalf("loaded model %+v", got)
	}
	// Query counting still works on the loaded catalog (byName rebuilt).
	if n, err := back.RecordQuery("zillow_p1", "interm1"); err != nil || n != 2 {
		t.Fatalf("post-load query: n=%d err=%v", n, err)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestDeleteModel(t *testing.T) {
	db := NewDB()
	db.RegisterModel(testModel())
	if !db.DeleteModel("zillow_p1") {
		t.Fatal("delete failed")
	}
	if db.DeleteModel("zillow_p1") {
		t.Fatal("double delete succeeded")
	}
	if db.Model("zillow_p1") != nil {
		t.Fatal("model survived delete")
	}
}
