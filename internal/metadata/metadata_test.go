package metadata

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"

	"mistique/internal/faultfs"
)

func testModel() *Model {
	return &Model{
		Name:          "zillow_p1",
		Kind:          TRAD,
		TotalExamples: 10000,
		Stages: []Stage{
			{Name: "ReadCSV", Index: 0, ExecSeconds: 0.5, OutputColumns: 20},
			{Name: "Join", Index: 1, ExecSeconds: 0.3, OutputColumns: 25},
		},
	}
}

func TestRegisterAndLookup(t *testing.T) {
	db := NewDB()
	if err := db.RegisterModel(testModel()); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterModel(testModel()); err == nil {
		t.Fatal("duplicate model accepted")
	}
	if db.Model("zillow_p1") == nil || db.Model("nope") != nil {
		t.Fatal("Model lookup broken")
	}
	if !reflect.DeepEqual(db.Models(), []string{"zillow_p1"}) {
		t.Fatalf("Models() = %v", db.Models())
	}
}

func TestIntermediates(t *testing.T) {
	db := NewDB()
	db.RegisterModel(testModel())
	it := &Interm{Name: "interm1", StageIndex: 1, Columns: []string{"a", "b"}, Rows: 10000, Blocks: 10}
	if err := db.AddIntermediate("zillow_p1", it); err != nil {
		t.Fatal(err)
	}
	if err := db.AddIntermediate("zillow_p1", &Interm{Name: "interm1"}); err == nil {
		t.Fatal("duplicate intermediate accepted")
	}
	if err := db.AddIntermediate("ghost", &Interm{Name: "x"}); err == nil {
		t.Fatal("unknown model accepted")
	}
	got := db.Intermediate("zillow_p1", "interm1")
	if got == nil || got.Blocks != 10 {
		t.Fatalf("Intermediate lookup: %+v", got)
	}
	if db.Intermediate("zillow_p1", "ghost") != nil || db.Intermediate("ghost", "x") != nil {
		t.Fatal("phantom intermediate")
	}
}

func TestQueryCounting(t *testing.T) {
	db := NewDB()
	db.RegisterModel(testModel())
	// Lazily created on first query.
	n, err := db.RecordQuery("zillow_p1", "pred")
	if err != nil || n != 1 {
		t.Fatalf("first query: n=%d err=%v", n, err)
	}
	n, _ = db.RecordQuery("zillow_p1", "pred")
	if n != 2 {
		t.Fatalf("second query n=%d", n)
	}
	if it := db.Intermediate("zillow_p1", "pred"); it == nil || it.Materialized {
		t.Fatal("lazy intermediate state wrong")
	}
	if _, err := db.RecordQuery("ghost", "pred"); err == nil {
		t.Fatal("unknown model query accepted")
	}
}

func TestSetMaterialized(t *testing.T) {
	db := NewDB()
	db.RegisterModel(testModel())
	db.AddIntermediate("zillow_p1", &Interm{Name: "interm1"})
	if err := db.SetMaterialized("zillow_p1", "interm1", 12345, "LP_QT"); err != nil {
		t.Fatal(err)
	}
	it := db.Intermediate("zillow_p1", "interm1")
	if !it.Materialized || it.StoredBytes != 12345 || it.QuantScheme != "LP_QT" {
		t.Fatalf("materialized state %+v", it)
	}
	if err := db.SetMaterialized("zillow_p1", "ghost", 1, "x"); err == nil {
		t.Fatal("unknown intermediate accepted")
	}
	if err := db.SetMaterialized("ghost", "x", 1, "x"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := NewDB()
	m := testModel()
	db.RegisterModel(m)
	db.AddIntermediate("zillow_p1", &Interm{Name: "interm1", Columns: []string{"x"}, Rows: 5})
	db.RecordQuery("zillow_p1", "interm1")
	db.SetMaterialized("zillow_p1", "interm1", 99, "FULL")

	path := filepath.Join(t.TempDir(), "meta.json")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	it := back.Intermediate("zillow_p1", "interm1")
	if it == nil || it.QueryCount != 1 || it.StoredBytes != 99 || !it.Materialized {
		t.Fatalf("loaded intermediate %+v", it)
	}
	if got := back.Model("zillow_p1"); got.TotalExamples != 10000 || len(got.Stages) != 2 {
		t.Fatalf("loaded model %+v", got)
	}
	// Query counting still works on the loaded catalog (byName rebuilt).
	if n, err := back.RecordQuery("zillow_p1", "interm1"); err != nil || n != 2 {
		t.Fatalf("post-load query: n=%d err=%v", n, err)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestDeleteModel(t *testing.T) {
	db := NewDB()
	db.RegisterModel(testModel())
	if !db.DeleteModel("zillow_p1") {
		t.Fatal("delete failed")
	}
	if db.DeleteModel("zillow_p1") {
		t.Fatal("double delete succeeded")
	}
	if db.Model("zillow_p1") != nil {
		t.Fatal("model survived delete")
	}
}

func TestSetUnmaterialized(t *testing.T) {
	db := NewDB()
	db.RegisterModel(testModel())
	db.AddIntermediate("zillow_p1", &Interm{Name: "interm1"})
	db.SetMaterialized("zillow_p1", "interm1", 500, "FULL")
	if err := db.SetUnmaterialized("zillow_p1", "interm1"); err != nil {
		t.Fatal(err)
	}
	it := db.Intermediate("zillow_p1", "interm1")
	if it.Materialized || it.StoredBytes != 0 {
		t.Fatalf("unmaterialized state %+v", it)
	}
	if err := db.SetUnmaterialized("zillow_p1", "ghost"); err == nil {
		t.Fatal("unknown intermediate accepted")
	}
	if err := db.SetUnmaterialized("ghost", "x"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestLoadDetectsCorruption(t *testing.T) {
	db := NewDB()
	db.RegisterModel(testModel())
	path := filepath.Join(t.TempDir(), "meta.json")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the models payload (past the envelope prefix) so
	// the JSON still parses but the checksum no longer matches.
	idx := bytes.Index(blob, []byte("zillow_p1"))
	if idx < 0 {
		t.Fatal("payload not found")
	}
	blob[idx] = 'Z'
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted catalog load: %v, want ErrCorrupt", err)
	}
	// Outright garbage is also ErrCorrupt (vs an IO error).
	if err := os.WriteFile(path, []byte("{{{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("garbage catalog load: %v, want ErrCorrupt", err)
	}
}

func TestLoadLegacyFormat(t *testing.T) {
	// Pre-checksum catalogs ({"models": [...]} with no format/crc fields)
	// must load without verification for migration.
	legacy := []byte(`{"models": [{"name": "old_model", "kind": "TRAD", "total_examples": 5}]}`)
	path := filepath.Join(t.TempDir(), "meta.json")
	if err := os.WriteFile(path, legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if db.Model("old_model") == nil {
		t.Fatal("legacy model not loaded")
	}
}

func TestSaveFaultLeavesOldCatalogIntact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "meta.json")
	db := NewDB()
	db.RegisterModel(testModel())
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}

	// An ENOSPC mid-write must fail the save, remove the temp, and leave
	// the previous catalog loadable.
	inj := faultfs.NewInjector(nil)
	db.SetFS(inj)
	db.RegisterModel(&Model{Name: "second", Kind: DNN})
	inj.Arm(faultfs.Fault{Op: faultfs.OpWrite, PathContains: "meta.json", Err: syscall.ENOSPC})
	if err := db.Save(path); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("save error %v, want ENOSPC", err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("temp not cleaned up: %v", entries)
	}
	old, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if old.Model("zillow_p1") == nil || old.Model("second") != nil {
		t.Fatal("old catalog damaged by failed save")
	}

	// A crash mid-write leaves an orphan temp (cleanup dies with the
	// process) but still never touches the published file.
	inj.Arm(faultfs.Fault{Op: faultfs.OpWrite, PathContains: "meta.json", AfterBytes: 16, Crash: true})
	if err := db.Save(path); err == nil {
		t.Fatal("save survived a crash")
	}
	if old, err = Load(path); err != nil || old.Model("zillow_p1") == nil {
		t.Fatalf("old catalog damaged by crashed save: %v", err)
	}

	// After "reboot" (clean FS) the save goes through.
	inj.Disarm()
	db.SetFS(faultfs.OS())
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Model("second") == nil {
		t.Fatal("new catalog missing model")
	}
}

func TestSaveCrashAtRenameKeepsOldCatalog(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "meta.json")
	db := NewDB()
	db.RegisterModel(testModel())
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	inj := faultfs.NewInjector(nil)
	db.SetFS(inj)
	db.RegisterModel(&Model{Name: "second", Kind: DNN})
	inj.Arm(faultfs.Fault{Op: faultfs.OpRename, PathContains: "meta.json", Crash: true})
	if err := db.Save(path); err == nil {
		t.Fatal("save survived a crash at rename")
	}
	old, err := Load(path)
	if err != nil || old.Model("zillow_p1") == nil || old.Model("second") != nil {
		t.Fatalf("old catalog damaged: %v", err)
	}
}

func TestAddStreamRows(t *testing.T) {
	db := NewDB()
	if err := db.AddStreamRows("none", "x", 1, 1, 1); err == nil {
		t.Fatal("unknown model accepted")
	}
	db.RegisterModel(&Model{Name: "live", Kind: Stream})
	if err := db.AddStreamRows("live", "acts", 1, 1, 1); err == nil {
		t.Fatal("unknown intermediate accepted")
	}
	db.AddIntermediate("live", &Interm{Name: "acts", Columns: []string{"a", "b"}, QuantScheme: "FULL"})
	if err := db.AddStreamRows("live", "acts", 2048, 2, 16384); err != nil {
		t.Fatal(err)
	}
	it, _ := db.IntermSnapshot("live", "acts")
	if it.Rows != 2048 || it.Blocks != 2 || it.StoredBytes != 16384 || !it.Materialized {
		t.Fatalf("after stream growth: %+v", it)
	}
	// Replay re-offering already-counted rows must not move shape
	// backwards, but bytes still accumulate when passed.
	if err := db.AddStreamRows("live", "acts", 1024, 1, 0); err != nil {
		t.Fatal(err)
	}
	it, _ = db.IntermSnapshot("live", "acts")
	if it.Rows != 2048 || it.Blocks != 2 || it.StoredBytes != 16384 {
		t.Fatalf("shape moved backwards: %+v", it)
	}
	// Stream models survive a catalog save/load round trip.
	dir := t.TempDir()
	path := filepath.Join(dir, "metadata.json")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Model("live").Kind != Stream {
		t.Fatalf("stream kind lost: %q", db2.Model("live").Kind)
	}
}
