// Package metadata implements MISTIQUE's MetadataDB: the central catalog
// that ties the PipelineExecutor, DataStore and ChunkReader together. It
// records every logged model, the intermediates each produced, where their
// columns live, per-stage execution timings used by the cost model, and the
// per-intermediate query counters that drive adaptive materialization.
package metadata

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"mistique/internal/faultfs"
	"mistique/internal/obs"
)

// ErrCorrupt marks a catalog file that exists but fails to parse or whose
// checksum does not match its payload. Callers (the engine) quarantine
// the file and start from an empty catalog instead of refusing to open.
var ErrCorrupt = errors.New("metadata: corrupt catalog file")

// ModelKind distinguishes the two model classes the paper supports.
type ModelKind string

const (
	// TRAD is a traditional ML pipeline with explicit stages.
	TRAD ModelKind = "trad"
	// DNN is a deep neural network whose layers produce intermediates.
	DNN ModelKind = "dnn"
	// Stream is a live ingest source: a training job pushing batches over
	// the HTTP API. Stream models have no stages and cannot be re-run —
	// the cost model's RERUN strategy is unavailable for them.
	Stream ModelKind = "stream"
)

// Stage describes one pipeline stage or network layer, including the
// measurements the query cost model needs (Sec. 5.1).
type Stage struct {
	Name  string `json:"name"`
	Index int    `json:"index"`
	// ExecSeconds is the measured wall time to execute this stage (one
	// full pass over TotalExamples; for DNNs this is per-layer forward
	// time at the calibration batch size).
	ExecSeconds float64 `json:"exec_seconds"`
	// OutputColumns is the width of the produced intermediate.
	OutputColumns int `json:"output_columns"`
	// OutputBytesPerRow is the materialized size of one example of this
	// stage's output under the configured storage scheme.
	OutputBytesPerRow int64 `json:"output_bytes_per_row"`
}

// Model is one logged model (pipeline or network).
type Model struct {
	Name string    `json:"name"`
	Kind ModelKind `json:"kind"`
	// Parent names the model version this one was logged as a delta
	// against (LogDNN's Parent option): the previous checkpoint of the
	// same training run. Empty for root versions. The catalog's lineage
	// view walks this chain.
	Parent        string `json:"parent,omitempty"`
	TotalExamples int    `json:"total_examples"`
	ModelLoadSecs float64   `json:"model_load_secs"`
	Stages        []Stage   `json:"stages"`
	Intermediates []*Interm `json:"intermediates"`
	byName        map[string]*Interm
}

// Interm is the catalog entry for one intermediate.
type Interm struct {
	Name       string   `json:"name"`
	StageIndex int      `json:"stage_index"`
	Columns    []string `json:"columns"`
	Rows       int      `json:"rows"`
	Blocks     int      `json:"blocks"`
	// Materialized is true once the intermediate's chunks are in the
	// DataStore.
	Materialized bool `json:"materialized"`
	// QuantScheme names the storage scheme used (FULL, LP_QT, ...).
	QuantScheme string `json:"quant_scheme"`
	// StoredBytes is the encoded (pre-compression) footprint.
	StoredBytes int64 `json:"stored_bytes"`
	// QueryCount is n_query(i) in the storage cost model.
	QueryCount int64 `json:"query_count"`
}

// DB is the metadata database. Safe for concurrent use.
type DB struct {
	mu     sync.RWMutex
	models map[string]*Model
	fs     faultfs.FS
	// Catalog instruments (nil-safe no-ops until SetObs is called).
	obsQueries     *obs.Counter
	obsSaveSeconds *obs.Histogram
}

// NewDB creates an empty catalog.
func NewDB() *DB { return &DB{models: make(map[string]*Model), fs: faultfs.OS()} }

// SetFS overrides the filesystem Save writes through (fault-injection
// tests substitute a faultfs.Injector). Call before sharing the DB.
func (db *DB) SetFS(fs faultfs.FS) {
	if fs != nil {
		db.fs = fs
	}
}

// SetObs registers the catalog's instruments (query counter, Save
// latency) with the given registry. Call before sharing the DB; a nil
// registry leaves instrumentation disabled.
func (db *DB) SetObs(reg *obs.Registry) {
	db.obsQueries = reg.Counter("mistique_catalog_queries_total", "RecordQuery calls (n_query bumps) across all intermediates")
	db.obsSaveSeconds = reg.Histogram("mistique_catalog_save_seconds", "catalog Save (marshal+write+fsync+rename) time")
}

// RegisterModel adds a model; replacing an existing name is an error.
func (db *DB) RegisterModel(m *Model) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.models[m.Name]; dup {
		return fmt.Errorf("metadata: model %q already registered", m.Name)
	}
	if m.byName == nil {
		m.byName = make(map[string]*Interm, len(m.Intermediates))
		for _, it := range m.Intermediates {
			m.byName[it.Name] = it
		}
	}
	db.models[m.Name] = m
	return nil
}

// Model returns the named model or nil.
func (db *DB) Model(name string) *Model {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.models[name]
}

// Models returns all model names, sorted.
func (db *DB) Models() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.models))
	for n := range db.models {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// AddIntermediate registers an intermediate under a model.
func (db *DB) AddIntermediate(model string, it *Interm) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	m, ok := db.models[model]
	if !ok {
		return fmt.Errorf("metadata: unknown model %q", model)
	}
	if _, dup := m.byName[it.Name]; dup {
		return fmt.Errorf("metadata: intermediate %s.%s already registered", model, it.Name)
	}
	m.Intermediates = append(m.Intermediates, it)
	m.byName[it.Name] = it
	return nil
}

// Intermediate returns the catalog entry or nil. The returned pointer is
// shared with the catalog; prefer IntermSnapshot when reading fields that
// concurrent RecordQuery/SetMaterialized calls may update.
func (db *DB) Intermediate(model, name string) *Interm {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if m := db.models[model]; m != nil {
		return m.byName[name]
	}
	return nil
}

// IntermSnapshot returns a copy of the catalog entry, safe to read without
// holding the DB lock. The Columns slice is shared but never mutated in
// place after registration.
func (db *DB) IntermSnapshot(model, name string) (Interm, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if m := db.models[model]; m != nil {
		if it := m.byName[name]; it != nil {
			return *it, true
		}
	}
	return Interm{}, false
}

// IntermSnapshots returns copies of every catalog entry of a model (nil if
// the model is unknown), safe to iterate without holding the DB lock.
func (db *DB) IntermSnapshots(model string) []Interm {
	db.mu.RLock()
	defer db.mu.RUnlock()
	m := db.models[model]
	if m == nil {
		return nil
	}
	out := make([]Interm, len(m.Intermediates))
	for i, it := range m.Intermediates {
		out[i] = *it
	}
	return out
}

// RecordQuery bumps the query counter for an intermediate and returns the
// new count. Unknown intermediates are counted too (the storage cost model
// needs n_query for not-yet-materialized intermediates), so the entry is
// created lazily with Materialized=false.
func (db *DB) RecordQuery(model, name string) (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	m, ok := db.models[model]
	if !ok {
		return 0, fmt.Errorf("metadata: unknown model %q", model)
	}
	it, ok := m.byName[name]
	if !ok {
		it = &Interm{Name: name}
		m.Intermediates = append(m.Intermediates, it)
		m.byName[name] = it
	}
	it.QueryCount++
	db.obsQueries.Inc()
	return it.QueryCount, nil
}

// AddStreamRows advances a streaming intermediate's catalog shape after
// the flush pipeline drains WAL rows into partitions: rows/blocks move
// forward monotonically (replay may re-offer already-counted rows) and
// the stored footprint grows by deltaBytes. The entry is marked
// materialized on first growth.
func (db *DB) AddStreamRows(model, name string, rows, blocks int, deltaBytes int64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	m, ok := db.models[model]
	if !ok {
		return fmt.Errorf("metadata: unknown model %q", model)
	}
	it, ok := m.byName[name]
	if !ok {
		return fmt.Errorf("metadata: unknown intermediate %s.%s", model, name)
	}
	if rows > it.Rows {
		it.Rows = rows
	}
	if blocks > it.Blocks {
		it.Blocks = blocks
	}
	if deltaBytes > 0 {
		it.StoredBytes += deltaBytes
	}
	it.Materialized = it.Rows > 0
	return nil
}

// SetMaterialized updates materialization state and footprint.
func (db *DB) SetMaterialized(model, name string, bytes int64, scheme string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	m, ok := db.models[model]
	if !ok {
		return fmt.Errorf("metadata: unknown model %q", model)
	}
	it, ok := m.byName[name]
	if !ok {
		return fmt.Errorf("metadata: unknown intermediate %s.%s", model, name)
	}
	it.Materialized = true
	it.StoredBytes = bytes
	it.QuantScheme = scheme
	return nil
}

// SetUnmaterialized reverts an intermediate to the not-stored state. The
// engine's recovery path uses it when re-materialization after a
// quarantine fails, so the cost model stops choosing READ for chunks that
// are no longer there.
func (db *DB) SetUnmaterialized(model, name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	m, ok := db.models[model]
	if !ok {
		return fmt.Errorf("metadata: unknown model %q", model)
	}
	it, ok := m.byName[name]
	if !ok {
		return fmt.Errorf("metadata: unknown intermediate %s.%s", model, name)
	}
	it.Materialized = false
	it.StoredBytes = 0
	return nil
}

// envelope is the on-disk frame of the catalog: the models payload plus a
// CRC32-C over its exact bytes, validated on load so a torn or bit-rotted
// file is detected instead of silently mis-parsed into a wrong catalog.
// Format 0 (absent) is the pre-checksum layout, accepted for migration.
type envelope struct {
	Format int             `json:"format,omitempty"`
	CRC32C uint32          `json:"crc32c,omitempty"`
	Models json.RawMessage `json:"models"`
}

const envelopeFormat = 1

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Save writes the catalog to a JSON file, atomically (unique temp file,
// rename) and durably (fsync file and parent directory), with a CRC32-C
// checksum over the models payload in the envelope. Marshaling happens
// under the read lock: concurrent RecordQuery/SetMaterialized calls
// mutate Interm fields in place, and serializing unlocked would race
// with them.
func (db *DB) Save(path string) error {
	defer db.obsSaveSeconds.Time()()
	db.mu.RLock()
	models := make([]*Model, 0, len(db.models))
	for _, m := range db.models {
		models = append(models, m)
	}
	sort.Slice(models, func(i, j int) bool { return models[i].Name < models[j].Name })
	payload, err := json.Marshal(models)
	db.mu.RUnlock()
	if err != nil {
		return fmt.Errorf("metadata: marshal: %w", err)
	}
	env := envelope{Format: envelopeFormat, CRC32C: crc32.Checksum(payload, castagnoli), Models: payload}
	blob, err := json.Marshal(&env)
	if err != nil {
		return fmt.Errorf("metadata: marshal envelope: %w", err)
	}
	dir := filepath.Dir(path)
	f, err := db.fs.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("metadata: create temp for %s: %w", path, err)
	}
	tmp := f.Name()
	_, err = f.Write(blob)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		db.fs.Remove(tmp) // best effort; a crashed process leaves the orphan
		return fmt.Errorf("metadata: write %s: %w", tmp, err)
	}
	if err := db.fs.Rename(tmp, path); err != nil {
		db.fs.Remove(tmp)
		return fmt.Errorf("metadata: publish %s: %w", path, err)
	}
	if err := db.fs.SyncDir(dir); err != nil {
		return fmt.Errorf("metadata: sync dir %s: %w", dir, err)
	}
	return nil
}

// Load reads a catalog previously written by Save, validating the
// envelope checksum. Decode and checksum failures wrap ErrCorrupt; IO
// errors are returned as-is.
func Load(path string) (*DB, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("metadata: read %s: %w", path, err)
	}
	var env envelope
	if err := json.Unmarshal(blob, &env); err != nil {
		return nil, fmt.Errorf("%w: parse %s: %v", ErrCorrupt, path, err)
	}
	if env.Format >= envelopeFormat {
		// json.RawMessage preserves the value bytes as written, modulo
		// surrounding whitespace; compact to the canonical form Save
		// checksummed.
		var compact bytes.Buffer
		if err := json.Compact(&compact, env.Models); err != nil {
			return nil, fmt.Errorf("%w: payload %s: %v", ErrCorrupt, path, err)
		}
		if got := crc32.Checksum(compact.Bytes(), castagnoli); got != env.CRC32C {
			return nil, fmt.Errorf("%w: %s checksum mismatch (envelope %08x, payload %08x)", ErrCorrupt, path, env.CRC32C, got)
		}
	}
	var models []*Model
	if err := json.Unmarshal(env.Models, &models); err != nil {
		return nil, fmt.Errorf("%w: parse models %s: %v", ErrCorrupt, path, err)
	}
	db := NewDB()
	for _, m := range models {
		if err := db.RegisterModel(m); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// DeleteModel removes a model and its intermediates from the catalog.
// Returns false if the model was not registered.
func (db *DB) DeleteModel(name string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.models[name]; !ok {
		return false
	}
	delete(db.models, name)
	return true
}
