package nn

import (
	"math"
	"testing"

	"mistique/internal/data"
	"mistique/internal/tensor"
)

func TestRNNShapes(t *testing.T) {
	n := ElmanRNN("rnn", 6, 3, 8, 4, 1)
	// PadHidden + 6 steps + TakeHidden + Dense = 9 layers.
	if n.NumLayers() != 9 {
		t.Fatalf("layers %d", n.NumLayers())
	}
	c, h, w := n.OutputShape(n.NumLayers() - 1)
	if c != 4 || h != 1 || w != 1 {
		t.Fatalf("output shape %d,%d,%d", c, h, w)
	}
	// Step outputs carry the sequence plus hidden state.
	c, _, _ = n.OutputShape(1)
	if c != 6*3+8 {
		t.Fatalf("step output width %d", c)
	}
}

func TestRNNSharedParamsAppearOnce(t *testing.T) {
	n := ElmanRNN("rnn", 5, 2, 4, 3, 2)
	params := n.Params()
	// wx, wh, b shared across steps + dense weight/bias = 5 distinct.
	if len(params) != 5 {
		t.Fatalf("distinct params %d, want 5", len(params))
	}
	if got := len(n.allParams()); got != 5 {
		t.Fatalf("allParams %d, want 5", got)
	}
}

func TestRNNGradientCheck(t *testing.T) {
	n := ElmanRNN("rnn", 4, 2, 3, 2, 3)
	x, _ := data.Sequences(3, 4, 2, 2, 4)

	loss := func() float64 {
		y := n.Forward(x, n.NumLayers()-1)
		var s float64
		for _, v := range y.Data {
			s += float64(v) * float64(v)
		}
		return s / 2
	}
	y := n.Forward(x, n.NumLayers()-1)
	grad := y.Clone()
	for i := n.NumLayers() - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
	// Input gradient check.
	const eps = 1e-3
	for _, i := range []int{0, 5, 17} {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := loss()
		x.Data[i] = orig - eps
		lm := loss()
		x.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(grad.Data[i])) > 2e-2*(1+math.Abs(num)) {
			t.Fatalf("input grad %d: numeric %g analytic %g", i, num, grad.Data[i])
		}
	}
	// Shared weight gradient check (BPTT accumulates across steps).
	var step *RNNStep
	for _, l := range n.Layers {
		if s, ok := l.(*RNNStep); ok {
			step = s
			break
		}
	}
	for _, i := range []int{0, 3} {
		// Reset accumulated grads, recompute analytically.
		for _, p := range n.allParams() {
			for j := range p.G {
				p.G[j] = 0
			}
		}
		y := n.Forward(x, n.NumLayers()-1)
		g := y.Clone()
		for li := n.NumLayers() - 1; li >= 0; li-- {
			g = n.Layers[li].Backward(g)
		}
		want := float64(step.Wh.G[i])
		orig := step.Wh.W[i]
		step.Wh.W[i] = orig + eps
		lp := loss()
		step.Wh.W[i] = orig - eps
		lm := loss()
		step.Wh.W[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-want) > 2e-2*(1+math.Abs(num)) {
			t.Fatalf("Wh grad %d: numeric %g analytic %g", i, num, want)
		}
	}
}

func TestRNNTrainingLearns(t *testing.T) {
	x, labels := data.Sequences(80, 8, 2, 2, 5)
	n := ElmanRNN("rnn", 8, 2, 12, 2, 6)
	var first, last float64
	n.TrainEpochs(x, labels, 30, 16, 0.05, func(e int, loss float64) {
		if e == 0 {
			first = loss
		}
		last = loss
	})
	if last >= first {
		t.Fatalf("RNN loss did not decrease: %g -> %g", first, last)
	}
	if acc := n.Accuracy(x, labels); acc < 0.8 {
		t.Fatalf("RNN training accuracy %g", acc)
	}
}

func TestRNNCheckpointRoundTrip(t *testing.T) {
	n := ElmanRNN("rnn", 5, 2, 6, 3, 7)
	x, _ := data.Sequences(4, 5, 2, 3, 8)
	want := n.Forward(x, n.NumLayers()-1).Clone()
	blob := n.SaveWeights()
	m := ElmanRNN("rnn", 5, 2, 6, 3, 99)
	if err := m.LoadWeights(blob); err != nil {
		t.Fatal(err)
	}
	got := m.Forward(x, m.NumLayers()-1)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("restored RNN differs at %d", i)
		}
	}
}

func TestPadAndTakeHidden(t *testing.T) {
	p := NewPadHidden("p", 3)
	x := tensor.NewT4(2, 4, 1, 1)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	y := p.Forward(x)
	if y.C != 7 || y.At(0, 3, 0, 0) != 3 || y.At(0, 4, 0, 0) != 0 {
		t.Fatalf("pad forward wrong: %v", y.Data)
	}
	g := y.Clone()
	back := p.Backward(g)
	if back.C != 4 || back.At(1, 2, 0, 0) != y.At(1, 2, 0, 0) {
		t.Fatal("pad backward wrong")
	}

	tk := NewTakeHidden("t", 3)
	z := tk.Forward(y)
	if z.C != 3 || z.At(0, 0, 0, 0) != y.At(0, 4, 0, 0) {
		t.Fatal("take forward wrong")
	}
	gz := z.Clone()
	for i := range gz.Data {
		gz.Data[i] = 1
	}
	bz := tk.Backward(gz)
	if bz.C != 7 || bz.At(0, 4, 0, 0) != 1 || bz.At(0, 0, 0, 0) != 0 {
		t.Fatal("take backward wrong")
	}
}
