package nn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"mistique/internal/tensor"
)

// Network is an ordered stack of layers with a fixed input shape.
type Network struct {
	Name          string
	InC, InH, InW int
	Layers        []Layer
}

// NumLayers returns the layer count.
func (n *Network) NumLayers() int { return len(n.Layers) }

// LayerNames returns layer names in order.
func (n *Network) LayerNames() []string {
	out := make([]string, len(n.Layers))
	for i, l := range n.Layers {
		out[i] = l.Name()
	}
	return out
}

// Forward runs the input through layers [0, upTo] and returns the final
// activation. upTo = NumLayers()-1 gives the network output.
func (n *Network) Forward(x *tensor.T4, upTo int) *tensor.T4 {
	if upTo < 0 || upTo >= len(n.Layers) {
		panic(fmt.Sprintf("nn: Forward upTo %d out of range", upTo))
	}
	cur := x
	for i := 0; i <= upTo; i++ {
		cur = n.Layers[i].Forward(cur)
	}
	return cur
}

// ForwardAll runs the input through the whole network and returns every
// layer's activation — the model intermediates MISTIQUE logs.
func (n *Network) ForwardAll(x *tensor.T4) []*tensor.T4 {
	out := make([]*tensor.T4, len(n.Layers))
	cur := x
	for i, l := range n.Layers {
		cur = l.Forward(cur)
		out[i] = cur
	}
	return out
}

// ForwardBatched runs Forward over the examples of x in batches (the
// paper's DNN queries run with a prediction batch size) and concatenates
// the layer-upTo activations.
func (n *Network) ForwardBatched(x *tensor.T4, upTo, batch int) *tensor.T4 {
	if batch <= 0 || batch >= x.N {
		return n.Forward(x, upTo)
	}
	var out *tensor.T4
	for start := 0; start < x.N; start += batch {
		end := start + batch
		if end > x.N {
			end = x.N
		}
		part := n.Forward(x.SliceN(start, end), upTo)
		if out == nil {
			out = tensor.NewT4(x.N, part.C, part.H, part.W)
		}
		copy(out.Data[start*part.C*part.H*part.W:], part.Data)
	}
	return out
}

// OutputShape returns the (c, h, w) shape of layer i's output.
func (n *Network) OutputShape(i int) (c, h, w int) {
	c, h, w = n.InC, n.InH, n.InW
	for j := 0; j <= i; j++ {
		c, h, w = n.Layers[j].OutShape(c, h, w)
	}
	return c, h, w
}

// Params returns all trainable (unfrozen) parameters. Parameters shared by
// multiple layers (e.g. the weights of unrolled RNN steps) appear exactly
// once, so SGD applies each gradient a single time.
func (n *Network) Params() []*Param {
	var out []*Param
	seen := make(map[*Param]bool)
	for _, l := range n.Layers {
		for _, p := range l.Params() {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	return out
}

// FreezeConv freezes every convolutional layer (the paper's VGG16
// fine-tuning: the 13 pre-trained conv layers are frozen, only the new FC
// head trains).
func (n *Network) FreezeConv() {
	for _, l := range n.Layers {
		if c, ok := l.(*Conv2D); ok {
			c.Frozen = true
		}
	}
}

// TrainStep runs one SGD step of softmax cross-entropy on a batch and
// returns the batch loss.
func (n *Network) TrainStep(x *tensor.T4, labels []int, lr float32) float64 {
	if x.N != len(labels) {
		panic("nn: TrainStep batch size mismatch")
	}
	logits := n.Forward(x, len(n.Layers)-1)
	if logits.H != 1 || logits.W != 1 {
		panic("nn: TrainStep needs a (classes,1,1) output head")
	}
	grad := tensor.NewT4(logits.N, logits.C, 1, 1)
	var loss float64
	for i := 0; i < logits.N; i++ {
		row := logits.Example(i)
		g := grad.Example(i)
		p := softmax(row)
		loss += -math.Log(math.Max(float64(p[labels[i]]), 1e-12))
		for c := range p {
			g[c] = p[c]
			if c == labels[i] {
				g[c] -= 1
			}
			g[c] /= float32(logits.N)
		}
	}
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
	for _, p := range n.Params() {
		for i := range p.W {
			p.W[i] -= lr * p.G[i]
			p.G[i] = 0
		}
	}
	return loss / float64(x.N)
}

func softmax(row []float32) []float32 {
	mx := row[0]
	for _, v := range row {
		if v > mx {
			mx = v
		}
	}
	out := make([]float32, len(row))
	var sum float64
	for i, v := range row {
		e := math.Exp(float64(v - mx))
		out[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// Predict returns the argmax class per example.
func (n *Network) Predict(x *tensor.T4) []int {
	logits := n.Forward(x, len(n.Layers)-1)
	out := make([]int, x.N)
	for i := 0; i < x.N; i++ {
		row := logits.Example(i)
		best := 0
		for c, v := range row {
			if v > row[best] {
				best = c
			}
		}
		out[i] = best
	}
	return out
}

// Accuracy computes classification accuracy against labels.
func (n *Network) Accuracy(x *tensor.T4, labels []int) float64 {
	pred := n.Predict(x)
	hit := 0
	for i, p := range pred {
		if p == labels[i] {
			hit++
		}
	}
	if len(labels) == 0 {
		return 0
	}
	return float64(hit) / float64(len(labels))
}

// ---- model builders ----

// SimpleCNN builds the paper's CIFAR10_CNN shape: 4 conv layers in two
// blocks with pooling, then two dense layers.
func SimpleCNN(name string, classes int, seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	n := &Network{Name: name, InC: 3, InH: 32, InW: 32}
	add := func(l Layer) { n.Layers = append(n.Layers, l) }
	add(NewConv2D("conv1_1", 3, 8, 3, rng))
	add(NewReLU("relu1_1"))
	add(NewConv2D("conv1_2", 8, 8, 3, rng))
	add(NewReLU("relu1_2"))
	add(NewMaxPool("pool1"))
	add(NewConv2D("conv2_1", 8, 16, 3, rng))
	add(NewReLU("relu2_1"))
	add(NewConv2D("conv2_2", 16, 16, 3, rng))
	add(NewReLU("relu2_2"))
	add(NewMaxPool("pool2"))
	add(NewFlatten("flatten"))
	add(NewDense("fc1", 16*8*8, 64, rng))
	add(NewReLU("relu_fc1"))
	add(NewDense("logits", 64, classes, rng))
	return n
}

// VGG16 builds a width-scaled VGG16: the canonical 13-conv/5-pool stack
// followed by the paper's fine-tuning head (two small dense layers). width
// scales the channel counts (width=8 gives 8..64 channels; the real VGG16
// is width=64). Layer indices: conv block outputs sit at the same relative
// depths as the paper's Layer1 (first conv), Layer11 (mid conv stack) and
// Layer21 (last FC) reference points.
func VGG16(name string, classes, width int, seed int64) *Network {
	if width <= 0 {
		width = 8
	}
	rng := rand.New(rand.NewSource(seed))
	n := &Network{Name: name, InC: 3, InH: 32, InW: 32}
	add := func(l Layer) { n.Layers = append(n.Layers, l) }
	cfg := []int{1, 1, -1, 2, 2, -1, 4, 4, 4, -1, 8, 8, 8, -1, 8, 8, 8, -1}
	inC := 3
	convIdx := 0
	blockIdx := 1
	poolIdx := 1
	sub := 1
	for _, c := range cfg {
		if c < 0 {
			add(NewMaxPool(fmt.Sprintf("pool%d", poolIdx)))
			poolIdx++
			blockIdx++
			sub = 1
			continue
		}
		outC := c * width
		convIdx++
		add(NewConv2D(fmt.Sprintf("conv%d_%d", blockIdx, sub), inC, outC, 3, rng))
		add(NewReLU(fmt.Sprintf("relu%d_%d", blockIdx, sub)))
		sub++
		inC = outC
	}
	add(NewFlatten("flatten"))
	add(NewDense("fc1", inC*1*1, 64, rng))
	add(NewReLU("relu_fc1"))
	add(NewDense("logits", 64, classes, rng))
	return n
}

// ---- checkpoints ----

const ckptMagic = "MQNN"

// SaveWeights serializes all layer parameters (frozen included) to bytes.
func (n *Network) SaveWeights() []byte {
	out := []byte(ckptMagic)
	params := n.allParams()
	out = binary.LittleEndian.AppendUint32(out, uint32(len(params)))
	for _, p := range params {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(p.W)))
		for _, w := range p.W {
			out = binary.LittleEndian.AppendUint32(out, math.Float32bits(w))
		}
	}
	return out
}

// LoadWeights restores parameters saved by SaveWeights into this network.
// The architecture must match.
func (n *Network) LoadWeights(blob []byte) error {
	if len(blob) < 8 || string(blob[:4]) != ckptMagic {
		return errors.New("nn: bad checkpoint header")
	}
	params := n.allParams()
	cnt := int(binary.LittleEndian.Uint32(blob[4:]))
	if cnt != len(params) {
		return fmt.Errorf("nn: checkpoint has %d params, network has %d", cnt, len(params))
	}
	pos := 8
	for _, p := range params {
		if len(blob) < pos+4 {
			return errors.New("nn: truncated checkpoint")
		}
		k := int(binary.LittleEndian.Uint32(blob[pos:]))
		pos += 4
		if k != len(p.W) {
			return fmt.Errorf("nn: checkpoint param size %d, want %d", k, len(p.W))
		}
		if len(blob) < pos+4*k {
			return errors.New("nn: truncated checkpoint")
		}
		for i := 0; i < k; i++ {
			p.W[i] = math.Float32frombits(binary.LittleEndian.Uint32(blob[pos:]))
			pos += 4
		}
	}
	return nil
}

// allParams returns every parameter, including frozen ones (checkpoints
// must capture the full model). Shared parameters appear once.
func (n *Network) allParams() []*Param {
	var out []*Param
	seen := make(map[*Param]bool)
	add := func(ps ...*Param) {
		for _, p := range ps {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	for _, l := range n.Layers {
		switch t := l.(type) {
		case *Conv2D:
			add(t.Weight, t.Bias)
		case *Dense:
			add(t.Weight, t.Bias)
		case *RNNStep:
			add(t.Wx, t.Wh, t.B)
		}
	}
	return out
}

// TrainEpochs trains for the given number of epochs over (x, labels) with
// the given batch size, invoking onEpoch (if non-nil) after each epoch
// with the epoch index and mean loss. This produces the per-epoch
// checkpoint stream the paper's storage experiments log.
func (n *Network) TrainEpochs(x *tensor.T4, labels []int, epochs, batch int, lr float32, onEpoch func(epoch int, loss float64)) {
	if batch <= 0 {
		batch = 32
	}
	n.SetTraining(true)
	defer n.SetTraining(false)
	for e := 0; e < epochs; e++ {
		var total float64
		steps := 0
		for start := 0; start < x.N; start += batch {
			end := start + batch
			if end > x.N {
				end = x.N
			}
			total += n.TrainStep(x.SliceN(start, end), labels[start:end], lr)
			steps++
		}
		if onEpoch != nil {
			onEpoch(e, total/float64(maxInt(steps, 1)))
		}
	}
}

// SetTraining switches train-time-only layers (Dropout) between training
// and inference behaviour. TrainEpochs toggles this automatically; logging
// and queries always see inference mode.
func (n *Network) SetTraining(on bool) {
	for _, l := range n.Layers {
		if d, ok := l.(*Dropout); ok {
			d.training = on
		}
	}
}
