package nn

import (
	"math"
	"math/rand"
	"testing"

	"mistique/internal/data"
	"mistique/internal/tensor"
)

func randT4(n, c, h, w int, seed int64) *tensor.T4 {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.NewT4(n, c, h, w)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	return x
}

func TestConvIdentityKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D("c", 1, 1, 3, rng)
	for i := range c.Weight.W {
		c.Weight.W[i] = 0
	}
	c.Weight.W[c.wAt(0, 0, 1, 1)] = 1 // center tap = identity
	x := randT4(2, 1, 5, 5, 2)
	y := c.Forward(x)
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatalf("identity conv changed data at %d", i)
		}
	}
}

func TestConvKnownValues(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D("c", 1, 1, 3, rng)
	for i := range c.Weight.W {
		c.Weight.W[i] = 1 // box filter
	}
	c.Bias.W[0] = 0.5
	x := tensor.NewT4(1, 1, 3, 3)
	for i := range x.Data {
		x.Data[i] = 1
	}
	y := c.Forward(x)
	// Center cell sees all 9 ones; corner sees 4.
	if y.At(0, 0, 1, 1) != 9.5 {
		t.Fatalf("center %v", y.At(0, 0, 1, 1))
	}
	if y.At(0, 0, 0, 0) != 4.5 {
		t.Fatalf("corner %v", y.At(0, 0, 0, 0))
	}
}

// numericalGrad checks analytic gradients against finite differences.
func TestConvGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewConv2D("c", 2, 3, 3, rng)
	x := randT4(2, 2, 4, 4, 4)

	loss := func() float64 {
		y := c.Forward(x)
		var s float64
		for _, v := range y.Data {
			s += float64(v) * float64(v)
		}
		return s / 2
	}
	// Analytic gradient: dL/dy = y.
	y := c.Forward(x)
	grad := y.Clone()
	dx := c.Backward(grad)

	const eps = 1e-3
	// Check a few input gradients.
	for _, i := range []int{0, 7, 31} {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := loss()
		x.Data[i] = orig - eps
		lm := loss()
		x.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(dx.Data[i])) > 1e-2*(1+math.Abs(num)) {
			t.Fatalf("input grad %d: numeric %g analytic %g", i, num, dx.Data[i])
		}
	}
	// Check a few weight gradients.
	for _, i := range []int{0, 10, 50} {
		want := float64(c.Weight.G[i])
		orig := c.Weight.W[i]
		c.Weight.W[i] = orig + eps
		lp := loss()
		c.Weight.W[i] = orig - eps
		lm := loss()
		c.Weight.W[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-want) > 1e-2*(1+math.Abs(num)) {
			t.Fatalf("weight grad %d: numeric %g analytic %g", i, num, want)
		}
	}
}

func TestDenseGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDense("d", 6, 4, rng)
	x := randT4(3, 6, 1, 1, 6)
	loss := func() float64 {
		y := d.Forward(x)
		var s float64
		for _, v := range y.Data {
			s += float64(v) * float64(v)
		}
		return s / 2
	}
	y := d.Forward(x)
	dx := d.Backward(y.Clone())
	const eps = 1e-3
	for _, i := range []int{0, 5, 17} {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := loss()
		x.Data[i] = orig - eps
		lm := loss()
		x.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(dx.Data[i])) > 1e-2*(1+math.Abs(num)) {
			t.Fatalf("dense input grad %d: numeric %g analytic %g", i, num, dx.Data[i])
		}
	}
	for _, i := range []int{0, 11, 23} {
		want := float64(d.Weight.G[i])
		orig := d.Weight.W[i]
		d.Weight.W[i] = orig + eps
		lp := loss()
		d.Weight.W[i] = orig - eps
		lm := loss()
		d.Weight.W[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-want) > 1e-2*(1+math.Abs(num)) {
			t.Fatalf("dense weight grad %d: numeric %g analytic %g", i, num, want)
		}
	}
}

func TestReLUAndPool(t *testing.T) {
	r := NewReLU("r")
	x := tensor.NewT4(1, 1, 2, 2)
	copy(x.Data, []float32{-1, 2, -3, 4})
	y := r.Forward(x)
	if y.Data[0] != 0 || y.Data[1] != 2 || y.Data[3] != 4 {
		t.Fatalf("relu %v", y.Data)
	}
	g := tensor.NewT4(1, 1, 2, 2)
	copy(g.Data, []float32{10, 10, 10, 10})
	dx := r.Backward(g)
	if dx.Data[0] != 0 || dx.Data[1] != 10 {
		t.Fatalf("relu grad %v", dx.Data)
	}

	p := NewMaxPool("p")
	x2 := tensor.NewT4(1, 1, 2, 2)
	copy(x2.Data, []float32{1, 5, 3, 2})
	y2 := p.Forward(x2)
	if y2.H != 1 || y2.W != 1 || y2.Data[0] != 5 {
		t.Fatalf("pool %v", y2.Data)
	}
	g2 := tensor.NewT4(1, 1, 1, 1)
	g2.Data[0] = 7
	dx2 := p.Backward(g2)
	if dx2.Data[1] != 7 || dx2.Data[0] != 0 {
		t.Fatalf("pool grad routes to argmax: %v", dx2.Data)
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten("f")
	x := randT4(2, 3, 4, 4, 7)
	y := f.Forward(x)
	if y.C != 48 || y.H != 1 {
		t.Fatalf("flatten shape %d,%d,%d", y.C, y.H, y.W)
	}
	back := f.Backward(y)
	for i := range x.Data {
		if back.Data[i] != x.Data[i] {
			t.Fatal("flatten backward not inverse")
		}
	}
}

func TestNetworkShapes(t *testing.T) {
	n := SimpleCNN("cnn", 10, 1)
	c, h, w := n.OutputShape(n.NumLayers() - 1)
	if c != 10 || h != 1 || w != 1 {
		t.Fatalf("output shape %d,%d,%d", c, h, w)
	}
	v := VGG16("vgg", 10, 4, 1)
	// 13 convs + 13 relus + 5 pools + flatten + fc1 + relu + logits = 35.
	if v.NumLayers() != 35 {
		t.Fatalf("vgg layers %d", v.NumLayers())
	}
	c, h, w = v.OutputShape(v.NumLayers() - 1)
	if c != 10 || h != 1 || w != 1 {
		t.Fatalf("vgg output %d,%d,%d", c, h, w)
	}
	// After 5 pools the 32x32 map is 1x1.
	names := v.LayerNames()
	if names[0] != "conv1_1" || names[len(names)-1] != "logits" {
		t.Fatalf("names %v", names)
	}
}

func TestForwardAllMatchesForward(t *testing.T) {
	n := SimpleCNN("cnn", 10, 2)
	x := randT4(3, 3, 32, 32, 9)
	all := n.ForwardAll(x)
	if len(all) != n.NumLayers() {
		t.Fatalf("ForwardAll returned %d", len(all))
	}
	for _, li := range []int{0, 5, n.NumLayers() - 1} {
		direct := n.Forward(x, li)
		for i := range direct.Data {
			if direct.Data[i] != all[li].Data[i] {
				t.Fatalf("layer %d mismatch at %d", li, i)
			}
		}
	}
}

func TestForwardBatchedMatchesUnbatched(t *testing.T) {
	n := SimpleCNN("cnn", 10, 3)
	x := randT4(10, 3, 32, 32, 10)
	a := n.Forward(x, 4)
	b := n.ForwardBatched(x, 4, 3)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("batched forward differs at %d", i)
		}
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	x, labels := data.Images(64, 2, 11)
	n := SimpleCNN("cnn", 2, 12)
	var first, last float64
	n.TrainEpochs(x, labels, 25, 16, 0.05, func(e int, loss float64) {
		if e == 0 {
			first = loss
		}
		last = loss
	})
	if last >= first {
		t.Fatalf("loss did not decrease: %g -> %g", first, last)
	}
	if acc := n.Accuracy(x, labels); acc < 0.9 {
		t.Fatalf("training accuracy %g after 25 epochs", acc)
	}
}

func TestFreezeConvKeepsWeights(t *testing.T) {
	x, labels := data.Images(32, 2, 13)
	n := VGG16("vgg", 2, 2, 14)
	n.FreezeConv()
	var convBefore []float32
	for _, l := range n.Layers {
		if c, ok := l.(*Conv2D); ok {
			convBefore = append(convBefore, c.Weight.W...)
		}
	}
	n.TrainEpochs(x, labels, 2, 16, 0.05, nil)
	var convAfter []float32
	var fcChanged bool
	for _, l := range n.Layers {
		if c, ok := l.(*Conv2D); ok {
			convAfter = append(convAfter, c.Weight.W...)
		}
	}
	fc := n.Layers[n.NumLayers()-1].(*Dense)
	for _, g := range fc.Weight.W {
		if g != 0 {
			fcChanged = true
			break
		}
	}
	for i := range convBefore {
		if convBefore[i] != convAfter[i] {
			t.Fatal("frozen conv weights changed")
		}
	}
	if !fcChanged {
		t.Fatal("fc head weights all zero (did not train)")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	n := SimpleCNN("cnn", 10, 20)
	x := randT4(2, 3, 32, 32, 21)
	before := n.Forward(x, n.NumLayers()-1).Clone()
	blob := n.SaveWeights()

	// Perturb, then restore.
	m := SimpleCNN("cnn", 10, 99)
	if err := m.LoadWeights(blob); err != nil {
		t.Fatal(err)
	}
	after := m.Forward(x, m.NumLayers()-1)
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			t.Fatalf("restored network differs at %d", i)
		}
	}
	// Corrupt header and mismatched architecture fail.
	if err := m.LoadWeights([]byte("nope")); err == nil {
		t.Fatal("bad header accepted")
	}
	other := VGG16("vgg", 10, 2, 1)
	if err := other.LoadWeights(blob); err == nil {
		t.Fatal("architecture mismatch accepted")
	}
}

func TestPredictAndAccuracy(t *testing.T) {
	n := SimpleCNN("cnn", 3, 30)
	x := randT4(5, 3, 32, 32, 31)
	pred := n.Predict(x)
	if len(pred) != 5 {
		t.Fatalf("pred len %d", len(pred))
	}
	for _, p := range pred {
		if p < 0 || p >= 3 {
			t.Fatalf("class %d out of range", p)
		}
	}
	if acc := n.Accuracy(x, pred); acc != 1 {
		t.Fatalf("self accuracy %g", acc)
	}
}

func BenchmarkVGGForward8(b *testing.B) {
	n := VGG16("vgg", 10, 4, 1)
	x := randT4(8, 3, 32, 32, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Forward(x, n.NumLayers()-1)
	}
}

func TestDropout(t *testing.T) {
	d := NewDropout("drop", 0.5, 1)
	x := randT4(4, 8, 2, 2, 40)

	// Inference mode: identity.
	if y := d.Forward(x); y != x {
		t.Fatal("inference dropout not identity")
	}

	// Training mode: some units zeroed, survivors scaled by 2.
	d.training = true
	y := d.Forward(x)
	zeros, scaled := 0, 0
	for i, v := range y.Data {
		switch {
		case v == 0 && x.Data[i] != 0:
			zeros++
		case x.Data[i] != 0:
			if math.Abs(float64(v-2*x.Data[i])) > 1e-6 {
				t.Fatalf("survivor %d not scaled: %v vs %v", i, v, x.Data[i])
			}
			scaled++
		}
	}
	if zeros == 0 || scaled == 0 {
		t.Fatalf("dropout degenerate: %d zeroed, %d kept", zeros, scaled)
	}
	// Backward routes gradients through the same mask.
	g := y.Clone()
	for i := range g.Data {
		g.Data[i] = 1
	}
	dx := d.Backward(g)
	for i, v := range y.Data {
		if v == 0 && dx.Data[i] != 0 {
			t.Fatal("gradient leaked through dropped unit")
		}
		if v != 0 && dx.Data[i] != 2 {
			t.Fatalf("kept-unit gradient %v, want 2", dx.Data[i])
		}
	}

	// SetTraining toggles via the network.
	n := &Network{Name: "d", InC: 8, InH: 2, InW: 2, Layers: []Layer{d}}
	n.SetTraining(false)
	if z := n.Forward(x, 0); z != x {
		t.Fatal("SetTraining(false) did not restore identity")
	}
	// Invalid p panics.
	defer func() {
		if recover() == nil {
			t.Fatal("p=1 accepted")
		}
	}()
	NewDropout("bad", 1, 1)
}
