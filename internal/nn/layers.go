// Package nn implements the deep-neural-network substrate MISTIQUE logs
// intermediates from: a pure-Go NCHW inference and training engine with
// Conv2D, ReLU, MaxPool, Flatten, Dense and softmax cross-entropy; VGG16-
// and simple-CNN-shaped model builders matching the paper's two CIFAR10
// models; SGD training with per-layer freezing (the VGG16 fine-tuning
// setup, whose frozen conv stack is what makes cross-epoch DEDUP pay off);
// and binary checkpointing of weights after every epoch.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"mistique/internal/tensor"
)

// Param is one trainable weight tensor with its gradient accumulator.
type Param struct {
	W []float32
	G []float32
}

func newParam(n int) *Param { return &Param{W: make([]float32, n), G: make([]float32, n)} }

// Layer is one network stage. Forward caches whatever Backward needs.
// Layers are stateful and not safe for concurrent use; clone networks for
// parallel inference.
type Layer interface {
	// Name is a short human-readable identifier, e.g. "conv3_1".
	Name() string
	// Forward computes the layer output for a batch.
	Forward(x *tensor.T4) *tensor.T4
	// Backward consumes dL/d(output) and returns dL/d(input), adding
	// weight gradients into Params.
	Backward(grad *tensor.T4) *tensor.T4
	// Params returns trainable parameters (nil for activation layers).
	Params() []*Param
	// OutShape maps an input (c, h, w) to the output shape.
	OutShape(c, h, w int) (int, int, int)
}

// ---- Conv2D ----

// Conv2D is a stride-1, same-padded 2-D convolution.
type Conv2D struct {
	name         string
	InC, OutC, K int
	Weight, Bias *Param
	Frozen       bool
	lastIn       *tensor.T4
}

// NewConv2D creates a Conv2D with He-initialized weights.
func NewConv2D(name string, inC, outC, k int, rng *rand.Rand) *Conv2D {
	c := &Conv2D{name: name, InC: inC, OutC: outC, K: k}
	c.Weight = newParam(outC * inC * k * k)
	c.Bias = newParam(outC)
	std := float32(math.Sqrt(2.0 / float64(inC*k*k)))
	for i := range c.Weight.W {
		c.Weight.W[i] = float32(rng.NormFloat64()) * std
	}
	return c
}

func (c *Conv2D) Name() string { return c.name }

func (c *Conv2D) Params() []*Param {
	if c.Frozen {
		return nil
	}
	return []*Param{c.Weight, c.Bias}
}

func (c *Conv2D) OutShape(_, h, w int) (int, int, int) { return c.OutC, h, w }

// wAt indexes the weight tensor [outC][inC][k][k].
func (c *Conv2D) wAt(oc, ic, ky, kx int) int {
	return ((oc*c.InC+ic)*c.K+ky)*c.K + kx
}

// Forward computes the same-padded convolution.
func (c *Conv2D) Forward(x *tensor.T4) *tensor.T4 {
	if x.C != c.InC {
		panic(fmt.Sprintf("nn: %s expects %d channels, got %d", c.name, c.InC, x.C))
	}
	c.lastIn = x
	pad := c.K / 2
	out := tensor.NewT4(x.N, c.OutC, x.H, x.W)
	for n := 0; n < x.N; n++ {
		for oc := 0; oc < c.OutC; oc++ {
			dst := out.Plane(n, oc)
			bias := c.Bias.W[oc]
			for i := range dst {
				dst[i] = bias
			}
			for ic := 0; ic < c.InC; ic++ {
				src := x.Plane(n, ic)
				for ky := 0; ky < c.K; ky++ {
					for kx := 0; kx < c.K; kx++ {
						w := c.Weight.W[c.wAt(oc, ic, ky, kx)]
						if w == 0 {
							continue
						}
						dy := ky - pad
						dx := kx - pad
						y0 := maxInt(0, -dy)
						y1 := minInt(x.H, x.H-dy)
						x0 := maxInt(0, -dx)
						x1 := minInt(x.W, x.W-dx)
						for y := y0; y < y1; y++ {
							srow := src[(y+dy)*x.W : (y+dy)*x.W+x.W]
							drow := dst[y*x.W : y*x.W+x.W]
							for xx := x0; xx < x1; xx++ {
								drow[xx] += w * srow[xx+dx]
							}
						}
					}
				}
			}
		}
	}
	return out
}

// Backward computes input gradients and accumulates weight/bias gradients.
func (c *Conv2D) Backward(grad *tensor.T4) *tensor.T4 {
	x := c.lastIn
	if x == nil {
		panic("nn: Conv2D.Backward before Forward")
	}
	pad := c.K / 2
	dx := tensor.NewT4(x.N, x.C, x.H, x.W)
	for n := 0; n < x.N; n++ {
		for oc := 0; oc < c.OutC; oc++ {
			g := grad.Plane(n, oc)
			// Bias gradient.
			var bsum float32
			for _, v := range g {
				bsum += v
			}
			c.Bias.G[oc] += bsum
			for ic := 0; ic < c.InC; ic++ {
				src := x.Plane(n, ic)
				dsrc := dx.Plane(n, ic)
				for ky := 0; ky < c.K; ky++ {
					for kx := 0; kx < c.K; kx++ {
						dyo := ky - pad
						dxo := kx - pad
						var wg float32
						w := c.Weight.W[c.wAt(oc, ic, ky, kx)]
						y0 := maxInt(0, -dyo)
						y1 := minInt(x.H, x.H-dyo)
						x0 := maxInt(0, -dxo)
						x1 := minInt(x.W, x.W-dxo)
						for y := y0; y < y1; y++ {
							grow := g[y*x.W : y*x.W+x.W]
							srow := src[(y+dyo)*x.W : (y+dyo)*x.W+x.W]
							drow := dsrc[(y+dyo)*x.W : (y+dyo)*x.W+x.W]
							for xx := x0; xx < x1; xx++ {
								gv := grow[xx]
								wg += gv * srow[xx+dxo]
								drow[xx+dxo] += gv * w
							}
						}
						c.Weight.G[c.wAt(oc, ic, ky, kx)] += wg
					}
				}
			}
		}
	}
	return dx
}

// ---- ReLU ----

// ReLU is the rectified-linear activation.
type ReLU struct {
	name   string
	lastIn *tensor.T4
}

// NewReLU creates a ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

func (r *ReLU) Name() string                         { return r.name }
func (r *ReLU) Params() []*Param                     { return nil }
func (r *ReLU) OutShape(c, h, w int) (int, int, int) { return c, h, w }

func (r *ReLU) Forward(x *tensor.T4) *tensor.T4 {
	r.lastIn = x
	out := tensor.NewT4(x.N, x.C, x.H, x.W)
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	return out
}

func (r *ReLU) Backward(grad *tensor.T4) *tensor.T4 {
	dx := tensor.NewT4(grad.N, grad.C, grad.H, grad.W)
	for i, v := range r.lastIn.Data {
		if v > 0 {
			dx.Data[i] = grad.Data[i]
		}
	}
	return dx
}

// ---- MaxPool 2x2 ----

// MaxPool is a 2x2, stride-2 max pooling layer.
type MaxPool struct {
	name    string
	argmax  []int32
	inShape [4]int
}

// NewMaxPool creates a 2x2 max pooling layer.
func NewMaxPool(name string) *MaxPool { return &MaxPool{name: name} }

func (m *MaxPool) Name() string                         { return m.name }
func (m *MaxPool) Params() []*Param                     { return nil }
func (m *MaxPool) OutShape(c, h, w int) (int, int, int) { return c, h / 2, w / 2 }

func (m *MaxPool) Forward(x *tensor.T4) *tensor.T4 {
	oh, ow := x.H/2, x.W/2
	out := tensor.NewT4(x.N, x.C, oh, ow)
	m.argmax = make([]int32, len(out.Data))
	m.inShape = [4]int{x.N, x.C, x.H, x.W}
	idx := 0
	for n := 0; n < x.N; n++ {
		for ch := 0; ch < x.C; ch++ {
			src := x.Plane(n, ch)
			dst := out.Plane(n, ch)
			base := (n*x.C + ch) * x.H * x.W
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					bi := 2*oy*x.W + 2*ox
					best := src[bi]
					bestAt := bi
					for _, off := range [3]int{1, x.W, x.W + 1} {
						if v := src[bi+off]; v > best {
							best = v
							bestAt = bi + off
						}
					}
					dst[oy*ow+ox] = best
					m.argmax[idx] = int32(base + bestAt)
					idx++
				}
			}
		}
	}
	return out
}

func (m *MaxPool) Backward(grad *tensor.T4) *tensor.T4 {
	dx := tensor.NewT4(m.inShape[0], m.inShape[1], m.inShape[2], m.inShape[3])
	for i, v := range grad.Data {
		dx.Data[m.argmax[i]] += v
	}
	return dx
}

// ---- Flatten ----

// Flatten reshapes (C, H, W) feature volumes into (C*H*W, 1, 1) vectors.
type Flatten struct {
	name    string
	inShape [4]int
}

// NewFlatten creates a flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

func (f *Flatten) Name() string                         { return f.name }
func (f *Flatten) Params() []*Param                     { return nil }
func (f *Flatten) OutShape(c, h, w int) (int, int, int) { return c * h * w, 1, 1 }

func (f *Flatten) Forward(x *tensor.T4) *tensor.T4 {
	f.inShape = [4]int{x.N, x.C, x.H, x.W}
	out := tensor.NewT4(x.N, x.C*x.H*x.W, 1, 1)
	copy(out.Data, x.Data)
	return out
}

func (f *Flatten) Backward(grad *tensor.T4) *tensor.T4 {
	dx := tensor.NewT4(f.inShape[0], f.inShape[1], f.inShape[2], f.inShape[3])
	copy(dx.Data, grad.Data)
	return dx
}

// ---- Dense ----

// Dense is a fully connected layer on (C, 1, 1) inputs.
type Dense struct {
	name    string
	In, Out int
	Weight  *Param // Out x In, row-major
	Bias    *Param
	Frozen  bool
	lastIn  *tensor.T4
}

// NewDense creates a Dense layer with He initialization.
func NewDense(name string, in, out int, rng *rand.Rand) *Dense {
	d := &Dense{name: name, In: in, Out: out, Weight: newParam(in * out), Bias: newParam(out)}
	std := float32(math.Sqrt(2.0 / float64(in)))
	for i := range d.Weight.W {
		d.Weight.W[i] = float32(rng.NormFloat64()) * std
	}
	return d
}

func (d *Dense) Name() string { return d.name }

func (d *Dense) Params() []*Param {
	if d.Frozen {
		return nil
	}
	return []*Param{d.Weight, d.Bias}
}

func (d *Dense) OutShape(_, _, _ int) (int, int, int) { return d.Out, 1, 1 }

func (d *Dense) Forward(x *tensor.T4) *tensor.T4 {
	if x.C != d.In || x.H != 1 || x.W != 1 {
		panic(fmt.Sprintf("nn: %s expects (%d,1,1) input, got (%d,%d,%d)", d.name, d.In, x.C, x.H, x.W))
	}
	d.lastIn = x
	out := tensor.NewT4(x.N, d.Out, 1, 1)
	for n := 0; n < x.N; n++ {
		src := x.Example(n)
		dst := out.Example(n)
		for o := 0; o < d.Out; o++ {
			sum := d.Bias.W[o]
			row := d.Weight.W[o*d.In : (o+1)*d.In]
			for i, v := range src {
				sum += row[i] * v
			}
			dst[o] = sum
		}
	}
	return out
}

func (d *Dense) Backward(grad *tensor.T4) *tensor.T4 {
	x := d.lastIn
	dx := tensor.NewT4(x.N, d.In, 1, 1)
	for n := 0; n < x.N; n++ {
		src := x.Example(n)
		g := grad.Example(n)
		dsrc := dx.Example(n)
		for o := 0; o < d.Out; o++ {
			gv := g[o]
			if gv == 0 {
				continue
			}
			d.Bias.G[o] += gv
			wRow := d.Weight.W[o*d.In : (o+1)*d.In]
			gRow := d.Weight.G[o*d.In : (o+1)*d.In]
			for i, v := range src {
				gRow[i] += gv * v
				dsrc[i] += gv * wRow[i]
			}
		}
	}
	return dx
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ---- Dropout ----

// Dropout zeroes a random fraction of activations during training and
// scales the survivors by 1/(1-p) (inverted dropout), acting as identity
// at inference. The canonical VGG16 head uses p=0.5. Toggle with
// Network.SetTraining; layers default to inference mode so logged
// intermediates are deterministic.
type Dropout struct {
	name     string
	P        float32
	training bool
	rng      *rand.Rand
	mask     []bool
}

// NewDropout creates a dropout layer with drop probability p in [0, 1).
func NewDropout(name string, p float32, seed int64) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout p %v out of [0,1)", p))
	}
	return &Dropout{name: name, P: p, rng: rand.New(rand.NewSource(seed))}
}

func (d *Dropout) Name() string                         { return d.name }
func (d *Dropout) Params() []*Param                     { return nil }
func (d *Dropout) OutShape(c, h, w int) (int, int, int) { return c, h, w }

func (d *Dropout) Forward(x *tensor.T4) *tensor.T4 {
	if !d.training || d.P == 0 {
		d.mask = nil
		return x
	}
	out := tensor.NewT4(x.N, x.C, x.H, x.W)
	d.mask = make([]bool, len(x.Data))
	scale := 1 / (1 - d.P)
	for i, v := range x.Data {
		if d.rng.Float32() >= d.P {
			d.mask[i] = true
			out.Data[i] = v * scale
		}
	}
	return out
}

func (d *Dropout) Backward(grad *tensor.T4) *tensor.T4 {
	if d.mask == nil {
		return grad
	}
	dx := tensor.NewT4(grad.N, grad.C, grad.H, grad.W)
	scale := 1 / (1 - d.P)
	for i, keep := range d.mask {
		if keep {
			dx.Data[i] = grad.Data[i] * scale
		}
	}
	return dx
}
