package nn

import (
	"fmt"
	"math"
	"math/rand"

	"mistique/internal/tensor"
)

// This file implements the paper's future-work extension to recurrent
// models: an Elman RNN expressed as a stack of shared-weight step layers,
// so every timestep's hidden state is a layer output — i.e. a model
// intermediate MISTIQUE can log, de-duplicate and query like any other.
//
// The sequence tensor layout is (N, seqLen*inputDim + hidden, 1, 1): the
// flattened input sequence followed by the carried hidden state. Each
// RNNStep consumes x_t from the sequence region and rewrites the hidden
// tail; TakeHidden extracts the final state for the classifier head.

// RNNStep is one unrolled timestep of an Elman RNN. All steps of a network
// share the same Wx/Wh/b parameters.
type RNNStep struct {
	name             string
	Step             int
	InputDim, Hidden int
	SeqLen           int
	Wx, Wh, B        *Param
	Frozen           bool

	lastIn *tensor.T4
	lastH  []float32 // post-tanh activations, N x Hidden
}

// NewRNNStep creates step t sharing the given parameters.
func NewRNNStep(name string, step, seqLen, inputDim, hidden int, wx, wh, b *Param) *RNNStep {
	return &RNNStep{
		name: name, Step: step, SeqLen: seqLen,
		InputDim: inputDim, Hidden: hidden,
		Wx: wx, Wh: wh, B: b,
	}
}

func (r *RNNStep) Name() string { return r.name }

func (r *RNNStep) Params() []*Param {
	if r.Frozen {
		return nil
	}
	return []*Param{r.Wx, r.Wh, r.B}
}

func (r *RNNStep) OutShape(c, h, w int) (int, int, int) { return c, h, w }

func (r *RNNStep) width() int { return r.SeqLen*r.InputDim + r.Hidden }

// Forward computes h_t = tanh(Wx x_t + Wh h_{t-1} + b) and rewrites the
// hidden tail; the sequence region passes through unchanged.
func (r *RNNStep) Forward(x *tensor.T4) *tensor.T4 {
	if x.C != r.width() || x.H != 1 || x.W != 1 {
		panic(fmt.Sprintf("nn: %s expects (%d,1,1) input, got (%d,%d,%d)", r.name, r.width(), x.C, x.H, x.W))
	}
	r.lastIn = x
	out := x.Clone()
	r.lastH = make([]float32, x.N*r.Hidden)
	seqBytes := r.SeqLen * r.InputDim
	for n := 0; n < x.N; n++ {
		in := x.Example(n)
		xt := in[r.Step*r.InputDim : (r.Step+1)*r.InputDim]
		hPrev := in[seqBytes:]
		dst := out.Example(n)[seqBytes:]
		for j := 0; j < r.Hidden; j++ {
			sum := r.B.W[j]
			wxRow := r.Wx.W[j*r.InputDim : (j+1)*r.InputDim]
			for i, v := range xt {
				sum += wxRow[i] * v
			}
			whRow := r.Wh.W[j*r.Hidden : (j+1)*r.Hidden]
			for i, v := range hPrev {
				sum += whRow[i] * v
			}
			h := float32(math.Tanh(float64(sum)))
			dst[j] = h
			r.lastH[n*r.Hidden+j] = h
		}
	}
	return out
}

// Backward propagates through the tanh recurrence (one BPTT step; chaining
// step layers yields full backpropagation through time).
func (r *RNNStep) Backward(grad *tensor.T4) *tensor.T4 {
	x := r.lastIn
	if x == nil {
		panic("nn: RNNStep.Backward before Forward")
	}
	dx := grad.Clone() // sequence region gradient passes through
	seqBytes := r.SeqLen * r.InputDim
	for n := 0; n < x.N; n++ {
		in := x.Example(n)
		xt := in[r.Step*r.InputDim : (r.Step+1)*r.InputDim]
		hPrev := in[seqBytes:]
		gOut := grad.Example(n)[seqBytes:]
		gIn := dx.Example(n)
		gxt := gIn[r.Step*r.InputDim : (r.Step+1)*r.InputDim]
		ghPrev := gIn[seqBytes:]
		for j := range ghPrev {
			ghPrev[j] = 0 // replaced, not passed through
		}
		for j := 0; j < r.Hidden; j++ {
			h := r.lastH[n*r.Hidden+j]
			dpre := gOut[j] * (1 - h*h)
			if dpre == 0 {
				continue
			}
			r.B.G[j] += dpre
			wxRow := r.Wx.W[j*r.InputDim : (j+1)*r.InputDim]
			gwxRow := r.Wx.G[j*r.InputDim : (j+1)*r.InputDim]
			for i, v := range xt {
				gwxRow[i] += dpre * v
				gxt[i] += dpre * wxRow[i]
			}
			whRow := r.Wh.W[j*r.Hidden : (j+1)*r.Hidden]
			gwhRow := r.Wh.G[j*r.Hidden : (j+1)*r.Hidden]
			for i, v := range hPrev {
				gwhRow[i] += dpre * v
				ghPrev[i] += dpre * whRow[i]
			}
		}
	}
	return dx
}

// PadHidden widens the input (N, C, 1, 1) to (N, C+Hidden, 1, 1) with a
// zero-initialized hidden tail.
type PadHidden struct {
	name   string
	Hidden int
	inC    int
}

// NewPadHidden creates the hidden-state initializer layer.
func NewPadHidden(name string, hidden int) *PadHidden {
	return &PadHidden{name: name, Hidden: hidden}
}

func (p *PadHidden) Name() string                         { return p.name }
func (p *PadHidden) Params() []*Param                     { return nil }
func (p *PadHidden) OutShape(c, h, w int) (int, int, int) { return c + p.Hidden, h, w }

func (p *PadHidden) Forward(x *tensor.T4) *tensor.T4 {
	p.inC = x.C
	out := tensor.NewT4(x.N, x.C+p.Hidden, 1, 1)
	for n := 0; n < x.N; n++ {
		copy(out.Example(n), x.Example(n))
	}
	return out
}

func (p *PadHidden) Backward(grad *tensor.T4) *tensor.T4 {
	dx := tensor.NewT4(grad.N, p.inC, 1, 1)
	for n := 0; n < grad.N; n++ {
		copy(dx.Example(n), grad.Example(n)[:p.inC])
	}
	return dx
}

// TakeHidden extracts the trailing Hidden entries (the final state).
type TakeHidden struct {
	name   string
	Hidden int
	inC    int
}

// NewTakeHidden creates the final-state extraction layer.
func NewTakeHidden(name string, hidden int) *TakeHidden {
	return &TakeHidden{name: name, Hidden: hidden}
}

func (t *TakeHidden) Name() string                         { return t.name }
func (t *TakeHidden) Params() []*Param                     { return nil }
func (t *TakeHidden) OutShape(_, h, w int) (int, int, int) { return t.Hidden, h, w }

func (t *TakeHidden) Forward(x *tensor.T4) *tensor.T4 {
	t.inC = x.C
	out := tensor.NewT4(x.N, t.Hidden, 1, 1)
	for n := 0; n < x.N; n++ {
		copy(out.Example(n), x.Example(n)[x.C-t.Hidden:])
	}
	return out
}

func (t *TakeHidden) Backward(grad *tensor.T4) *tensor.T4 {
	dx := tensor.NewT4(grad.N, t.inC, 1, 1)
	for n := 0; n < grad.N; n++ {
		copy(dx.Example(n)[t.inC-t.Hidden:], grad.Example(n))
	}
	return dx
}

// ElmanRNN builds a sequence classifier: PadHidden, seqLen shared-weight
// RNN steps (each step's output — containing h_t — is a loggable
// intermediate), TakeHidden and a Dense head. The input tensor shape is
// (N, seqLen*inputDim, 1, 1).
func ElmanRNN(name string, seqLen, inputDim, hidden, classes int, seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	wx := newParam(hidden * inputDim)
	wh := newParam(hidden * hidden)
	b := newParam(hidden)
	stdX := float32(math.Sqrt(1.0 / float64(inputDim)))
	stdH := float32(math.Sqrt(1.0 / float64(hidden)))
	for i := range wx.W {
		wx.W[i] = float32(rng.NormFloat64()) * stdX
	}
	for i := range wh.W {
		wh.W[i] = float32(rng.NormFloat64()) * stdH
	}

	n := &Network{Name: name, InC: seqLen * inputDim, InH: 1, InW: 1}
	n.Layers = append(n.Layers, NewPadHidden("init_h", hidden))
	for t := 0; t < seqLen; t++ {
		n.Layers = append(n.Layers, NewRNNStep(fmt.Sprintf("step%d", t), t, seqLen, inputDim, hidden, wx, wh, b))
	}
	n.Layers = append(n.Layers, NewTakeHidden("final_h", hidden))
	n.Layers = append(n.Layers, NewDense("logits", hidden, classes, rng))
	return n
}
