package quant

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestGKQuantileAccuracyUniform(t *testing.T) {
	sk, err := NewGKSketch(0.01)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	rng := rand.New(rand.NewSource(1))
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = rng.Float32()
		sk.Add(vals[i])
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, phi := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		got, err := sk.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		// Rank error at most ~eps*n: compare against the true rank window.
		rank := sort.Search(n, func(i int) bool { return vals[i] >= got })
		wantRank := int(phi * float64(n))
		if absInt(rank-wantRank) > int(0.02*n) {
			t.Fatalf("phi=%.2f: value %g at rank %d, want rank ~%d", phi, got, rank, wantRank)
		}
	}
	// Space bound: orders of magnitude below n.
	if sk.Size() > 4000 {
		t.Fatalf("sketch holds %d entries for %d values", sk.Size(), n)
	}
	if sk.Count() != n {
		t.Fatalf("count %d", sk.Count())
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestGKQuantileSkewed(t *testing.T) {
	// Heavy-tailed (post-ReLU-like) distribution: mostly zeros, some mass.
	sk, _ := NewGKSketch(0.005)
	rng := rand.New(rand.NewSource(2))
	n := 50000
	zeros := 0
	for i := 0; i < n; i++ {
		v := float32(0)
		if rng.Float64() > 0.7 {
			v = float32(math.Abs(rng.NormFloat64()))
		} else {
			zeros++
		}
		sk.Add(v)
	}
	// Median of a 70%-zero distribution is 0.
	med, err := sk.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if med != 0 {
		t.Fatalf("median %g, want 0", med)
	}
	// The 99th percentile is comfortably positive.
	p99, _ := sk.Quantile(0.99)
	if p99 < 1 {
		t.Fatalf("p99 %g too small", p99)
	}
}

func TestGKIgnoresNonFinite(t *testing.T) {
	sk, _ := NewGKSketch(0.01)
	sk.Add(float32(math.NaN()))
	sk.Add(float32(math.Inf(1)))
	if sk.Count() != 0 {
		t.Fatalf("non-finite values counted: %d", sk.Count())
	}
	if _, err := sk.Quantile(0.5); err == nil {
		t.Fatal("empty sketch quantile succeeded")
	}
	sk.Add(5)
	v, err := sk.Quantile(0.5)
	if err != nil || v != 5 {
		t.Fatalf("singleton quantile %g %v", v, err)
	}
}

func TestGKErrors(t *testing.T) {
	if _, err := NewGKSketch(0); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := NewGKSketch(0.7); err == nil {
		t.Fatal("eps=0.7 accepted")
	}
}

func TestFitKBitFromSketchMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]float32, 200000)
	for i := range vals {
		vals[i] = float32(rng.NormFloat64() * 5)
	}
	exact, err := FitKBit(vals[:100000], 8) // below threshold: exact sort
	if err != nil {
		t.Fatal(err)
	}
	sk, _ := NewGKSketch(0.25 / 256)
	sk.AddSlice(vals[:100000])
	approx, err := FitKBitFromSketch(sk, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstructions agree closely on fresh data.
	test := vals[100000:101000]
	re := exact.Apply(test)
	ra := approx.Apply(test)
	var sumErr, sumAbs float64
	for i := range re {
		sumErr += math.Abs(float64(re[i] - ra[i]))
		sumAbs += math.Abs(float64(re[i]))
	}
	if rel := sumErr / sumAbs; rel > 0.05 {
		t.Fatalf("sketch-fitted quantizer deviates %.1f%% from exact", rel*100)
	}
}

func TestFitKBitSwitchesToSketchAboveThreshold(t *testing.T) {
	// Just over the threshold: must still produce a sane monotone quantizer.
	n := sketchThreshold + 1024
	vals := make([]float32, n)
	rng := rand.New(rand.NewSource(4))
	for i := range vals {
		vals[i] = rng.Float32() * 100
	}
	q, err := FitKBit(vals, 4)
	if err != nil {
		t.Fatal(err)
	}
	probe := []float32{1, 10, 25, 50, 75, 99}
	rec := q.Apply(probe)
	for i := 1; i < len(rec); i++ {
		if rec[i] < rec[i-1] {
			t.Fatalf("non-monotone reconstruction %v", rec)
		}
	}
	if rec[0] > 20 || rec[len(rec)-1] < 80 {
		t.Fatalf("reconstruction out of range: %v", rec)
	}
}

func TestFitKBitFromSketchErrors(t *testing.T) {
	sk, _ := NewGKSketch(0.01)
	if _, err := FitKBitFromSketch(sk, 8); err == nil {
		t.Fatal("empty sketch accepted")
	}
	sk.Add(1)
	if _, err := FitKBitFromSketch(sk, 0); err == nil {
		t.Fatal("bits=0 accepted")
	}
}

func BenchmarkGKAdd(b *testing.B) {
	sk, _ := NewGKSketch(0.001)
	rng := rand.New(rand.NewSource(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Add(rng.Float32())
	}
}
