package quant

import (
	"math/rand"
	"testing"
)

func benchVals(n int) []float32 {
	rng := rand.New(rand.NewSource(7))
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(rng.NormFloat64())
	}
	return vals
}

func BenchmarkKBITQuantize(b *testing.B) {
	vals := benchVals(4096)
	q, err := FitKBit(vals, 8)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]byte, 0, q.EncodedLen(len(vals)))
	b.SetBytes(int64(4 * len(vals)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = q.Encode(dst[:0], vals)
	}
	_ = dst
}

func BenchmarkKBITReconstruct(b *testing.B) {
	vals := benchVals(4096)
	q, err := FitKBit(vals, 8)
	if err != nil {
		b.Fatal(err)
	}
	enc := q.Encode(nil, vals)
	dst := make([]float32, 0, len(vals))
	b.SetBytes(int64(4 * len(vals)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = q.Decode(dst[:0], enc, len(vals))
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = dst
}

func BenchmarkLPEncode(b *testing.B) {
	vals := benchVals(4096)
	q := NewLP()
	dst := make([]byte, 0, q.EncodedLen(len(vals)))
	b.SetBytes(int64(4 * len(vals)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = q.Encode(dst[:0], vals)
	}
	_ = dst
}

func BenchmarkLPReconstruct(b *testing.B) {
	vals := benchVals(4096)
	q := NewLP()
	enc := q.Encode(nil, vals)
	dst := make([]float32, 0, len(vals))
	b.SetBytes(int64(4 * len(vals)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = q.Decode(dst[:0], enc, len(vals))
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = dst
}
