// Package quant implements the activation quantization and summarization
// schemes of MISTIQUE (Sec. 4.1):
//
//   - LP_QT: lower-precision float16 representation (2 bytes/value),
//   - KBIT_QT: k-bit quantile binning with a reconstruction table
//     (k=8 by default: 256 quantile bins, 1 byte/value before packing),
//   - THRESHOLD_QT: binarization against a percentile threshold
//     (1 bit/value), as used by NetDissect-style analyses,
//   - POOL_QT: sigma x sigma average/max pooling of activation maps,
//     reducing the number of stored values by sigma^2.
//
// LP/KBIT/THRESHOLD are value codecs: they encode a float32 column into
// bytes and decode ("reconstruct") it back, trading fidelity for footprint.
// POOL is a summarizer: it shrinks the intermediate itself before the
// column store ever sees it.
package quant

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"mistique/internal/f16"
	"mistique/internal/tensor"
)

// Kind identifies a value codec.
type Kind uint8

const (
	// Full stores raw float32 values (4 bytes/value).
	Full Kind = iota
	// LP stores float16 values (2 bytes/value).
	LP
	// KBit stores quantile-bin indices (Bits bits/value, bit-packed).
	KBit
	// Threshold stores a 1-bit indicator of "activation above threshold".
	Threshold
)

func (k Kind) String() string {
	switch k {
	case Full:
		return "FULL"
	case LP:
		return "LP_QT"
	case KBit:
		return "KBIT_QT"
	case Threshold:
		return "THRESHOLD_QT"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Quantizer encodes float32 columns under one of the codecs. The zero value
// is the Full codec. KBit and Threshold quantizers must be fitted to a
// sample of the activation distribution before use (the paper collects
// samples first, then quantizes; see Sec. 4.1.1).
type Quantizer struct {
	Kind Kind
	// Bits is the number of bits per value for KBit (1..16).
	Bits int
	// boundaries has 2^Bits-1 interior quantile cut points (ascending).
	boundaries []float32
	// reps has 2^Bits reconstruction values (bin representatives).
	reps []float32
	// Thresh is the binarization threshold for Threshold.
	Thresh float32
}

// NewFull returns the identity (float32) codec.
func NewFull() *Quantizer { return &Quantizer{Kind: Full} }

// NewLP returns the float16 codec.
func NewLP() *Quantizer { return &Quantizer{Kind: LP} }

// FitKBit builds a KBit quantizer with 2^bits quantile bins estimated from
// samples. Samples need not be sorted; NaNs are ignored. At least one
// finite sample is required.
func FitKBit(samples []float32, bits int) (*Quantizer, error) {
	if bits < 1 || bits > 16 {
		return nil, fmt.Errorf("quant: bits must be in [1,16], got %d", bits)
	}
	if len(samples) > sketchThreshold {
		// Huge calibration streams: bounded-memory epsilon-approximate
		// quantiles instead of a full sort.
		return fitKBitSketch(samples, bits)
	}
	s := finiteSorted(samples)
	if len(s) == 0 {
		return nil, errors.New("quant: FitKBit needs at least one finite sample")
	}
	n := 1 << bits
	q := &Quantizer{Kind: KBit, Bits: bits}
	q.boundaries = make([]float32, n-1)
	for i := 1; i < n; i++ {
		q.boundaries[i-1] = quantile(s, float64(i)/float64(n))
	}
	q.reps = make([]float32, n)
	for i := 0; i < n; i++ {
		q.reps[i] = quantile(s, (float64(i)+0.5)/float64(n))
	}
	return q, nil
}

// FitThreshold builds a Threshold quantizer whose cut point is the given
// upper-tail percentile of samples: p(act > T) = alpha means
// percentile = 1-alpha (NetDissect uses alpha=0.005, percentile 0.995).
func FitThreshold(samples []float32, percentile float64) (*Quantizer, error) {
	if percentile <= 0 || percentile >= 1 {
		return nil, fmt.Errorf("quant: percentile must be in (0,1), got %g", percentile)
	}
	s := finiteSorted(samples)
	if len(s) == 0 {
		return nil, errors.New("quant: FitThreshold needs at least one finite sample")
	}
	return &Quantizer{Kind: Threshold, Thresh: quantile(s, percentile)}, nil
}

func finiteSorted(samples []float32) []float32 {
	s := make([]float32, 0, len(samples))
	for _, v := range samples {
		if !math.IsNaN(float64(v)) && !math.IsInf(float64(v), 0) {
			s = append(s, v)
		}
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

// quantile returns the p-quantile of ascending-sorted s by linear
// interpolation.
func quantile(s []float32, p float64) float32 {
	if len(s) == 1 {
		return s[0]
	}
	pos := p * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo < 0 {
		lo = 0
	}
	if hi >= len(s) {
		hi = len(s) - 1
	}
	frac := float32(pos - float64(lo))
	return s[lo] + frac*(s[hi]-s[lo])
}

// BitsPerValue returns the encoded width of one value in bits.
func (q *Quantizer) BitsPerValue() int {
	switch q.Kind {
	case Full:
		return 32
	case LP:
		return 16
	case KBit:
		return q.Bits
	case Threshold:
		return 1
	}
	panic("quant: unknown kind")
}

// Encode appends the encoded form of vals to dst and returns it. dst is
// grown once to the exact encoded size up front, so encoding into a fresh
// (or pooled) buffer costs at most one allocation regardless of length.
func (q *Quantizer) Encode(dst []byte, vals []float32) []byte {
	if need := q.EncodedLen(len(vals)); cap(dst)-len(dst) < need {
		dst = append(make([]byte, 0, len(dst)+need), dst...)
	}
	switch q.Kind {
	case Full:
		for _, v := range vals {
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
		}
		return dst
	case LP:
		return f16.AppendBytes(dst, vals)
	case KBit:
		return q.encodeBits(dst, vals)
	case Threshold:
		return q.encodeThreshold(dst, vals)
	}
	panic("quant: unknown kind")
}

func (q *Quantizer) bin(v float32) uint32 {
	// Binary search for the first boundary > v; the bin index is the count
	// of boundaries <= v.
	lo, hi := 0, len(q.boundaries)
	for lo < hi {
		mid := (lo + hi) / 2
		if q.boundaries[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint32(lo)
}

func (q *Quantizer) encodeBits(dst []byte, vals []float32) []byte {
	var acc uint64
	nbits := 0
	for _, v := range vals {
		acc |= uint64(q.bin(v)) << nbits
		nbits += q.Bits
		for nbits >= 8 {
			dst = append(dst, byte(acc))
			acc >>= 8
			nbits -= 8
		}
	}
	if nbits > 0 {
		dst = append(dst, byte(acc))
	}
	return dst
}

func (q *Quantizer) encodeThreshold(dst []byte, vals []float32) []byte {
	var acc byte
	nbits := 0
	for _, v := range vals {
		if v > q.Thresh {
			acc |= 1 << nbits
		}
		nbits++
		if nbits == 8 {
			dst = append(dst, acc)
			acc, nbits = 0, 0
		}
	}
	if nbits > 0 {
		dst = append(dst, acc)
	}
	return dst
}

// EncodedLen returns the number of bytes Encode produces for n values.
func (q *Quantizer) EncodedLen(n int) int {
	return (n*q.BitsPerValue() + 7) / 8
}

// Decode reconstructs n float32 values from data, appending to dst. For
// KBit the reconstruction is the bin representative (a quantile midpoint);
// for Threshold it is 0 or 1. This is the "reconstruction cost" the paper's
// cost model folds into the read constant.
func (q *Quantizer) Decode(dst []float32, data []byte, n int) ([]float32, error) {
	if want := q.EncodedLen(n); len(data) < want {
		return nil, fmt.Errorf("quant: decode needs %d bytes for %d values, have %d", want, n, len(data))
	}
	if cap(dst)-len(dst) < n {
		dst = append(make([]float32, 0, len(dst)+n), dst...)
	}
	switch q.Kind {
	case Full:
		for i := 0; i < n; i++ {
			dst = append(dst, math.Float32frombits(binary.LittleEndian.Uint32(data[4*i:])))
		}
		return dst, nil
	case LP:
		return f16.DecodeBytes(dst, data, n), nil
	case KBit:
		var acc uint64
		nbits := 0
		pos := 0
		mask := uint64(1)<<q.Bits - 1
		for i := 0; i < n; i++ {
			for nbits < q.Bits {
				acc |= uint64(data[pos]) << nbits
				pos++
				nbits += 8
			}
			dst = append(dst, q.reps[acc&mask])
			acc >>= q.Bits
			nbits -= q.Bits
		}
		return dst, nil
	case Threshold:
		for i := 0; i < n; i++ {
			if data[i/8]&(1<<(i%8)) != 0 {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		}
		return dst, nil
	}
	panic("quant: unknown kind")
}

// Apply returns the reconstructed version of vals (Encode then Decode),
// i.e. the values a diagnostic query observes after quantization.
func (q *Quantizer) Apply(vals []float32) []float32 {
	if q.Kind == Full {
		return vals
	}
	enc := q.Encode(nil, vals)
	out, err := q.Decode(make([]float32, 0, len(vals)), enc, len(vals))
	if err != nil {
		panic(err) // cannot happen: we just produced enc
	}
	return out
}

// MarshalBinary serializes the quantizer (kind, bits, tables, threshold).
func (q *Quantizer) MarshalBinary() ([]byte, error) {
	return q.AppendBinary(make([]byte, 0, q.MarshaledSize())), nil
}

// MarshaledSize returns len of the MarshalBinary encoding without
// allocating, so serializers can size a destination buffer exactly.
func (q *Quantizer) MarshaledSize() int {
	return 14 + 4*(len(q.boundaries)+len(q.reps))
}

// AppendBinary appends the MarshalBinary encoding to dst and returns it —
// the allocation-free form used when serializing into a pooled buffer.
func (q *Quantizer) AppendBinary(dst []byte) []byte {
	dst = append(dst, byte(q.Kind), byte(q.Bits))
	dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(q.Thresh))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(q.boundaries)))
	for _, b := range q.boundaries {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(b))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(q.reps)))
	for _, r := range q.reps {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(r))
	}
	return dst
}

// UnmarshalBinary deserializes a quantizer produced by MarshalBinary.
func (q *Quantizer) UnmarshalBinary(data []byte) error {
	if len(data) < 14 {
		return errors.New("quant: truncated quantizer")
	}
	q.Kind = Kind(data[0])
	q.Bits = int(data[1])
	q.Thresh = math.Float32frombits(binary.LittleEndian.Uint32(data[2:]))
	pos := 6
	nb := int(binary.LittleEndian.Uint32(data[pos:]))
	pos += 4
	if len(data) < pos+4*nb+4 {
		return errors.New("quant: truncated boundaries")
	}
	q.boundaries = make([]float32, nb)
	for i := range q.boundaries {
		q.boundaries[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[pos:]))
		pos += 4
	}
	nr := int(binary.LittleEndian.Uint32(data[pos:]))
	pos += 4
	if len(data) < pos+4*nr {
		return errors.New("quant: truncated reps")
	}
	q.reps = make([]float32, nr)
	for i := range q.reps {
		q.reps[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[pos:]))
		pos += 4
	}
	// A quantizer deserialized from untrusted bytes (a corrupt partition
	// file) must be safe to Decode with: reject shapes that would make
	// Decode index outside its tables or compute degenerate bit masks.
	switch q.Kind {
	case Full, LP, Threshold:
	case KBit:
		if q.Bits < 1 || q.Bits > 16 {
			return fmt.Errorf("quant: kbit bits %d out of range", q.Bits)
		}
		if len(q.reps) != 1<<q.Bits {
			return fmt.Errorf("quant: kbit needs %d reps, have %d", 1<<q.Bits, len(q.reps))
		}
	default:
		return fmt.Errorf("quant: unknown kind %d", q.Kind)
	}
	return nil
}

// Agg selects the pooling aggregation.
type Agg uint8

const (
	// Avg averages each pooling window (the paper's default).
	Avg Agg = iota
	// Max takes the maximum of each window.
	Max
)

// Pool applies sigma x sigma pooling with the given aggregation to every
// (example, channel) plane of x, producing a tensor with ceil(H/sigma) x
// ceil(W/sigma) spatial maps. sigma >= H collapses each map to one value
// (the paper's pool(S) extreme, e.g. pool(32) on CIFAR10).
func Pool(x *tensor.T4, sigma int, agg Agg) *tensor.T4 {
	if sigma < 1 {
		panic("quant: pool sigma must be >= 1")
	}
	oh := (x.H + sigma - 1) / sigma
	ow := (x.W + sigma - 1) / sigma
	out := tensor.NewT4(x.N, x.C, oh, ow)
	for n := 0; n < x.N; n++ {
		for c := 0; c < x.C; c++ {
			in := x.Plane(n, c)
			dst := out.Plane(n, c)
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					y0, x0 := oy*sigma, ox*sigma
					y1, x1 := y0+sigma, x0+sigma
					if y1 > x.H {
						y1 = x.H
					}
					if x1 > x.W {
						x1 = x.W
					}
					var v float32
					if agg == Max {
						v = float32(math.Inf(-1))
						for yy := y0; yy < y1; yy++ {
							for xx := x0; xx < x1; xx++ {
								if c := in[yy*x.W+xx]; c > v {
									v = c
								}
							}
						}
					} else {
						var sum float32
						for yy := y0; yy < y1; yy++ {
							for xx := x0; xx < x1; xx++ {
								sum += in[yy*x.W+xx]
							}
						}
						v = sum / float32((y1-y0)*(x1-x0))
					}
					dst[oy*ow+ox] = v
				}
			}
		}
	}
	return out
}
