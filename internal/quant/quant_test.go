package quant

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"mistique/internal/f16"
	"mistique/internal/tensor"
)

func randVals(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(rng.NormFloat64() * 10)
	}
	return out
}

func TestFullRoundTrip(t *testing.T) {
	q := NewFull()
	vals := randVals(100, 1)
	got := q.Apply(vals)
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("full codec changed value %d", i)
		}
	}
	if q.BitsPerValue() != 32 || q.EncodedLen(10) != 40 {
		t.Fatal("full sizes")
	}
}

func TestLPRoundTrip(t *testing.T) {
	q := NewLP()
	vals := randVals(100, 2)
	got := q.Apply(vals)
	for i := range vals {
		if got[i] != f16.Round(vals[i]) {
			t.Fatalf("LP[%d]: %v != %v", i, got[i], f16.Round(vals[i]))
		}
	}
	if q.BitsPerValue() != 16 || q.EncodedLen(10) != 20 {
		t.Fatal("LP sizes")
	}
}

func TestKBitMonotoneAndBounded(t *testing.T) {
	vals := randVals(5000, 3)
	q, err := FitKBit(vals, 8)
	if err != nil {
		t.Fatal(err)
	}
	rec := q.Apply(vals)
	// Mean reconstruction error should be small relative to the data range
	// for 256 bins on 5000 samples (tail bins are necessarily coarser).
	sorted := append([]float32(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rangeWidth := float64(sorted[len(sorted)-1] - sorted[0])
	var sumErr float64
	for i := range vals {
		sumErr += math.Abs(float64(rec[i] - vals[i]))
	}
	if mean := sumErr / float64(len(vals)); mean > rangeWidth/100 {
		t.Fatalf("mean reconstruction error %g too large (range %g)", mean, rangeWidth)
	}
	// Monotonicity: v1 <= v2 implies rec(v1) <= rec(v2).
	for trial := 0; trial < 200; trial++ {
		a, b := vals[trial], vals[trial+200]
		if a > b {
			a, b = b, a
		}
		ra := q.Apply([]float32{a})[0]
		rb := q.Apply([]float32{b})[0]
		if ra > rb {
			t.Fatalf("non-monotone reconstruction: %g->%g, %g->%g", a, ra, b, rb)
		}
	}
	if q.BitsPerValue() != 8 || q.EncodedLen(10) != 10 {
		t.Fatal("8-bit sizes")
	}
}

func TestKBitPacking3Bit(t *testing.T) {
	vals := randVals(1000, 4)
	q, err := FitKBit(vals, 3)
	if err != nil {
		t.Fatal(err)
	}
	if q.EncodedLen(8) != 3 { // 8 values * 3 bits = 24 bits = 3 bytes
		t.Fatalf("3-bit EncodedLen(8) = %d", q.EncodedLen(8))
	}
	// Round trip through pack/unpack must preserve bin reps exactly.
	rec1 := q.Apply(vals)
	rec2 := q.Apply(rec1)
	for i := range rec1 {
		if rec1[i] != rec2[i] {
			t.Fatalf("3-bit reconstruction not idempotent at %d", i)
		}
	}
}

func TestKBitRankPreservationProperty(t *testing.T) {
	// KBIT_QT's purpose: relative ordering (ranks) survives quantization.
	vals := randVals(2000, 5)
	q, _ := FitKBit(vals, 8)
	prop := func(i, j uint16) bool {
		a := vals[int(i)%len(vals)]
		b := vals[int(j)%len(vals)]
		ra := q.Apply([]float32{a})[0]
		rb := q.Apply([]float32{b})[0]
		if a < b {
			return ra <= rb
		}
		if a > b {
			return ra >= rb
		}
		return ra == rb
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestThreshold(t *testing.T) {
	vals := make([]float32, 1000)
	for i := range vals {
		vals[i] = float32(i) // uniform 0..999
	}
	q, err := FitThreshold(vals, 0.995)
	if err != nil {
		t.Fatal(err)
	}
	rec := q.Apply(vals)
	ones := 0
	for _, v := range rec {
		if v == 1 {
			ones++
		} else if v != 0 {
			t.Fatalf("threshold output %v not binary", v)
		}
	}
	// ~0.5% of values should be above the 99.5th percentile.
	if ones < 2 || ones > 10 {
		t.Fatalf("got %d ones, want ~5", ones)
	}
	if q.BitsPerValue() != 1 || q.EncodedLen(9) != 2 {
		t.Fatal("threshold sizes")
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := FitKBit(nil, 8); err == nil {
		t.Error("FitKBit on empty input should fail")
	}
	if _, err := FitKBit([]float32{1}, 0); err == nil {
		t.Error("FitKBit bits=0 should fail")
	}
	if _, err := FitKBit([]float32{1}, 17); err == nil {
		t.Error("FitKBit bits=17 should fail")
	}
	if _, err := FitThreshold([]float32{1}, 1.5); err == nil {
		t.Error("FitThreshold percentile=1.5 should fail")
	}
	nan := float32(math.NaN())
	if _, err := FitThreshold([]float32{nan}, 0.5); err == nil {
		t.Error("FitThreshold all-NaN should fail")
	}
	if q, err := FitKBit([]float32{nan, 5}, 2); err != nil || q.Apply([]float32{5})[0] != 5 {
		t.Error("FitKBit should skip NaNs")
	}
}

func TestDecodeTruncated(t *testing.T) {
	q := NewLP()
	enc := q.Encode(nil, []float32{1, 2, 3})
	if _, err := q.Decode(nil, enc[:3], 3); err == nil {
		t.Fatal("truncated decode should fail")
	}
}

func TestQuantizerSerialization(t *testing.T) {
	vals := randVals(500, 6)
	for _, mk := range []func() *Quantizer{
		NewFull,
		NewLP,
		func() *Quantizer { q, _ := FitKBit(vals, 8); return q },
		func() *Quantizer { q, _ := FitKBit(vals, 3); return q },
		func() *Quantizer { q, _ := FitThreshold(vals, 0.9); return q },
	} {
		q := mk()
		blob, err := q.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back Quantizer
		if err := back.UnmarshalBinary(blob); err != nil {
			t.Fatalf("%v: %v", q.Kind, err)
		}
		a := q.Apply(vals)
		b := back.Apply(vals)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: deserialized quantizer differs at %d", q.Kind, i)
			}
		}
	}
	var q Quantizer
	if err := q.UnmarshalBinary([]byte{1, 2}); err == nil {
		t.Fatal("truncated unmarshal should fail")
	}
}

func TestPoolAvg(t *testing.T) {
	x := tensor.NewT4(1, 1, 4, 4)
	for i := 0; i < 16; i++ {
		x.Data[i] = float32(i)
	}
	p := Pool(x, 2, Avg)
	if p.H != 2 || p.W != 2 {
		t.Fatalf("pool shape %dx%d", p.H, p.W)
	}
	// Window (0,0): values 0,1,4,5 -> 2.5
	if p.At(0, 0, 0, 0) != 2.5 {
		t.Fatalf("pool avg = %v", p.At(0, 0, 0, 0))
	}
	if p.At(0, 0, 1, 1) != 12.5 {
		t.Fatalf("pool avg = %v", p.At(0, 0, 1, 1))
	}
}

func TestPoolMaxAndFullCollapse(t *testing.T) {
	x := tensor.NewT4(2, 3, 4, 4)
	rng := rand.New(rand.NewSource(7))
	for i := range x.Data {
		x.Data[i] = rng.Float32()
	}
	m := Pool(x, 2, Max)
	if got := m.At(0, 0, 0, 0); got != maxOf(x, 0, 0, 0, 0, 2) {
		t.Fatalf("pool max = %v", got)
	}
	// sigma = H collapses to 1x1 (pool(S)).
	c := Pool(x, 4, Avg)
	if c.H != 1 || c.W != 1 {
		t.Fatalf("collapse shape %dx%d", c.H, c.W)
	}
	var sum float32
	for _, v := range x.Plane(1, 2) {
		sum += v
	}
	if got := c.At(1, 2, 0, 0); math.Abs(float64(got-sum/16)) > 1e-6 {
		t.Fatalf("collapse avg %v want %v", got, sum/16)
	}
}

func TestPoolRaggedEdge(t *testing.T) {
	x := tensor.NewT4(1, 1, 5, 5)
	for i := range x.Data {
		x.Data[i] = 1
	}
	p := Pool(x, 2, Avg)
	if p.H != 3 || p.W != 3 {
		t.Fatalf("ragged pool shape %dx%d", p.H, p.W)
	}
	if p.At(0, 0, 2, 2) != 1 { // 1x1 corner window of all ones
		t.Fatal("ragged corner")
	}
}

func maxOf(x *tensor.T4, n, c, y0, x0, sigma int) float32 {
	v := float32(math.Inf(-1))
	for y := y0; y < y0+sigma; y++ {
		for xx := x0; xx < x0+sigma; xx++ {
			if w := x.At(n, c, y, xx); w > v {
				v = w
			}
		}
	}
	return v
}

func BenchmarkKBitEncode(b *testing.B) {
	vals := randVals(4096, 9)
	q, _ := FitKBit(vals, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Encode(nil, vals)
	}
}

func BenchmarkKBitDecode(b *testing.B) {
	vals := randVals(4096, 9)
	q, _ := FitKBit(vals, 8)
	enc := q.Encode(nil, vals)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Decode(nil, enc, len(vals)); err != nil {
			b.Fatal(err)
		}
	}
}
