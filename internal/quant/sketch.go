package quant

import (
	"fmt"
	"math"
	"sort"
)

// GKSketch is a Greenwald-Khanna epsilon-approximate quantile summary.
// KBIT_QT needs activation quantiles, and a full sort of every logged
// activation does not scale to the paper's 350 GB streams; the sketch
// maintains rank error at most eps*n in O((1/eps) * log(eps*n)) space, so
// quantizer tables can be fitted in one pass over arbitrarily large
// activation streams. FitKBit switches to a sketch automatically above
// sketchThreshold samples.
type GKSketch struct {
	eps float64
	// entries are (value, g, delta) tuples sorted by value: g is the gap
	// in minimum rank from the previous entry, delta the rank uncertainty.
	entries []gkEntry
	n       int64
	// buf batches inserts; merged on overflow or query.
	buf []float32
}

type gkEntry struct {
	v     float32
	g     int64
	delta int64
}

// NewGKSketch creates a sketch with the given rank-error fraction
// (e.g. 0.001 keeps every quantile within 0.1% of true rank).
func NewGKSketch(eps float64) (*GKSketch, error) {
	if eps <= 0 || eps >= 0.5 {
		return nil, fmt.Errorf("quant: GK eps must be in (0, 0.5), got %g", eps)
	}
	return &GKSketch{eps: eps}, nil
}

// Count returns the number of values added.
func (s *GKSketch) Count() int64 { return s.n + int64(len(s.buf)) }

// Add inserts one value. NaNs and infinities are ignored (as in FitKBit).
func (s *GKSketch) Add(v float32) {
	f := float64(v)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return
	}
	s.buf = append(s.buf, v)
	if len(s.buf) >= s.batchSize() {
		s.flush()
	}
}

// AddSlice inserts a batch of values.
func (s *GKSketch) AddSlice(vals []float32) {
	for _, v := range vals {
		s.Add(v)
	}
}

func (s *GKSketch) batchSize() int {
	b := int(1.0 / s.eps)
	if b < 64 {
		b = 64
	}
	return b
}

// flush merges the insert buffer into the summary and compresses.
func (s *GKSketch) flush() {
	if len(s.buf) == 0 {
		return
	}
	sort.Slice(s.buf, func(i, j int) bool { return s.buf[i] < s.buf[j] })
	merged := make([]gkEntry, 0, len(s.entries)+len(s.buf))
	i, j := 0, 0
	for i < len(s.entries) || j < len(s.buf) {
		if j >= len(s.buf) || (i < len(s.entries) && s.entries[i].v <= s.buf[j]) {
			merged = append(merged, s.entries[i])
			i++
			continue
		}
		v := s.buf[j]
		j++
		s.n++
		var delta int64
		// Interior insertions carry the standard GK uncertainty.
		if len(merged) > 0 && (i < len(s.entries) || j < len(s.buf)) {
			delta = int64(2*s.eps*float64(s.n)) - 1
			if delta < 0 {
				delta = 0
			}
		}
		merged = append(merged, gkEntry{v: v, g: 1, delta: delta})
	}
	s.entries = merged
	s.buf = s.buf[:0]
	s.compress()
}

// compress merges adjacent entries whose combined uncertainty stays within
// the 2*eps*n budget.
func (s *GKSketch) compress() {
	if len(s.entries) < 3 {
		return
	}
	budget := int64(2 * s.eps * float64(s.n))
	out := s.entries[:0]
	out = append(out, s.entries[0])
	for i := 1; i < len(s.entries)-1; i++ {
		e := s.entries[i]
		next := s.entries[i+1]
		if e.g+next.g+next.delta <= budget {
			// Fold e into next (next absorbs e's gap).
			s.entries[i+1].g += e.g
			continue
		}
		out = append(out, e)
	}
	out = append(out, s.entries[len(s.entries)-1])
	s.entries = out
}

// Quantile returns an eps-approximate phi-quantile (phi in [0, 1]).
// Returns an error when the sketch is empty.
func (s *GKSketch) Quantile(phi float64) (float32, error) {
	s.flush()
	if s.n == 0 {
		return 0, fmt.Errorf("quant: empty sketch")
	}
	if phi < 0 {
		phi = 0
	}
	if phi > 1 {
		phi = 1
	}
	target := int64(phi*float64(s.n-1)) + 1
	bound := int64(s.eps * float64(s.n))
	var rmin int64
	for i, e := range s.entries {
		rmin += e.g
		rmax := rmin + e.delta
		if target-rmin <= bound && rmax-target <= bound {
			return e.v, nil
		}
		if i == len(s.entries)-1 {
			break
		}
	}
	return s.entries[len(s.entries)-1].v, nil
}

// Size returns the number of summary entries (for tests: must stay far
// below Count).
func (s *GKSketch) Size() int {
	s.flush()
	return len(s.entries)
}

// sketchThreshold is the sample count above which FitKBit builds its
// quantile table from a GK sketch instead of a full sort.
const sketchThreshold = 1 << 20

// fitKBitSketch fits the quantizer from a sketch over the samples.
func fitKBitSketch(samples []float32, bits int) (*Quantizer, error) {
	sk, err := NewGKSketch(0.25 / float64(int(1)<<bits))
	if err != nil {
		return nil, err
	}
	sk.AddSlice(samples)
	return FitKBitFromSketch(sk, bits)
}

// FitKBitFromSketch builds a KBit quantizer from a GK sketch — the
// streaming path for fitting tables over activation volumes too large to
// buffer. The sketch's eps should be at most 1/2^(bits+1) so adjacent
// quantile bins remain distinguishable.
func FitKBitFromSketch(sk *GKSketch, bits int) (*Quantizer, error) {
	if bits < 1 || bits > 16 {
		return nil, fmt.Errorf("quant: bits must be in [1,16], got %d", bits)
	}
	if sk.Count() == 0 {
		return nil, fmt.Errorf("quant: FitKBitFromSketch needs a non-empty sketch")
	}
	n := 1 << bits
	q := &Quantizer{Kind: KBit, Bits: bits}
	q.boundaries = make([]float32, n-1)
	for i := 1; i < n; i++ {
		v, err := sk.Quantile(float64(i) / float64(n))
		if err != nil {
			return nil, err
		}
		q.boundaries[i-1] = v
	}
	// Boundaries must be non-decreasing for binary search; the sketch can
	// return tiny inversions at equal-value plateaus.
	for i := 1; i < len(q.boundaries); i++ {
		if q.boundaries[i] < q.boundaries[i-1] {
			q.boundaries[i] = q.boundaries[i-1]
		}
	}
	q.reps = make([]float32, n)
	for i := 0; i < n; i++ {
		v, err := sk.Quantile((float64(i) + 0.5) / float64(n))
		if err != nil {
			return nil, err
		}
		q.reps[i] = v
	}
	for i := 1; i < len(q.reps); i++ {
		if q.reps[i] < q.reps[i-1] {
			q.reps[i] = q.reps[i-1]
		}
	}
	return q, nil
}
