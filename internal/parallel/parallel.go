// Package parallel provides the shared worker-pool primitives behind every
// concurrent hot path in mistique: ingest fan-out (per-column quantize +
// encode + dedup), partition flush/compaction, and parallel chunk reads.
//
// The package is deliberately tiny: a bounded parallel-for (ForEach), a
// bounded error group (Group), and a two-stage producer/consumer overlap
// (Pipeline). All degrade to exact serial execution when workers <= 1,
// which is what Config.Workers = 1 uses to recover the single-threaded
// baseline for A/B benchmarking.
package parallel

import (
	"runtime"
	"sync"
)

// Workers resolves a worker-count knob: n <= 0 selects GOMAXPROCS (use all
// available parallelism), any positive n is used as-is.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines and returns the first error encountered (remaining indices
// are still visited; fn must be safe to call after another index failed).
// With workers <= 1 (or n <= 1) it runs serially on the calling goroutine
// and stops at the first error, matching a plain loop.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		ferr error
	)
	idx := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := fn(i); err != nil {
					mu.Lock()
					if ferr == nil {
						ferr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return ferr
}

// Group is a bounded error group: at most workers tasks run concurrently,
// Go submits a task, Wait joins all tasks and returns the first error.
// With workers <= 1, Go runs the task synchronously on the caller (exact
// serial semantics); Err lets long submit loops bail out early.
type Group struct {
	workers int
	sem     chan struct{}
	wg      sync.WaitGroup
	mu      sync.Mutex
	err     error
}

// NewGroup creates a group bounded to Workers(workers) concurrent tasks.
func NewGroup(workers int) *Group {
	workers = Workers(workers)
	g := &Group{workers: workers}
	if workers > 1 {
		g.sem = make(chan struct{}, workers)
	}
	return g
}

// Go runs fn, synchronously when the group is serial, otherwise on a new
// goroutine once a worker slot frees up. The first error is retained.
func (g *Group) Go(fn func() error) {
	if g.sem == nil {
		if err := fn(); err != nil {
			g.setErr(err)
		}
		return
	}
	g.sem <- struct{}{}
	g.wg.Add(1)
	go func() {
		defer func() {
			<-g.sem
			g.wg.Done()
		}()
		if err := fn(); err != nil {
			g.setErr(err)
		}
	}()
}

// Wait blocks until every submitted task finished and returns the first
// error any of them produced.
func (g *Group) Wait() error {
	g.wg.Wait()
	return g.Err()
}

// Err returns the first recorded error without waiting (submit loops use
// it to stop enqueueing doomed work).
func (g *Group) Err() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

func (g *Group) setErr(err error) {
	g.mu.Lock()
	if g.err == nil {
		g.err = err
	}
	g.mu.Unlock()
}

// Pipeline overlaps a serial production stage with a parallel consumption
// stage: produce(i) runs in order on the calling goroutine while consume(i,
// item) calls fan out across at most workers goroutines, so producing item
// i+1 overlaps consuming item i (e.g. serializing partition N+1 while
// partition N compresses). At most workers items are in flight, bounding
// memory to workers produced-but-unconsumed items. With workers <= 1 each
// item is produced and consumed inline, in order, stopping at the first
// error — exact serial semantics for the A/B baseline. With workers > 1 a
// produce error stops production immediately; consume errors stop further
// production but already-produced items still reach consume (mirroring
// ForEach's "fn must be safe after another index failed" contract), and the
// first error in pipeline order wins.
func Pipeline[T any](n, workers int, produce func(i int) (T, error), consume func(i int, item T) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			item, err := produce(i)
			if err != nil {
				return err
			}
			if err := consume(i, item); err != nil {
				return err
			}
		}
		return nil
	}
	type job struct {
		i    int
		item T
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		consErr error
	)
	jobs := make(chan job, workers-1)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for j := range jobs {
				if err := consume(j.i, j.item); err != nil {
					mu.Lock()
					if consErr == nil {
						consErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	var prodErr error
	for i := 0; i < n; i++ {
		mu.Lock()
		stop := consErr != nil
		mu.Unlock()
		if stop {
			break
		}
		item, err := produce(i)
		if err != nil {
			prodErr = err
			break
		}
		jobs <- job{i: i, item: item}
	}
	close(jobs)
	wg.Wait()
	// A consume failure stops production, so when both stages failed the
	// consume error came first in pipeline order; report it.
	if consErr != nil {
		return consErr
	}
	return prodErr
}
