package parallel

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d", got)
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestForEachVisitsAll(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		const n = 100
		seen := make([]int32, n)
		err := ForEach(n, workers, func(i int) error {
			atomic.AddInt32(&seen[i], 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := ForEach(50, workers, func(i int) error {
			if i == 17 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
	}
}

func TestForEachSerialStopsEarly(t *testing.T) {
	var calls int32
	boom := errors.New("boom")
	_ = ForEach(10, 1, func(i int) error {
		atomic.AddInt32(&calls, 1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if calls != 4 {
		t.Fatalf("serial ForEach made %d calls after error at 3", calls)
	}
}

func TestGroup(t *testing.T) {
	for _, workers := range []int{1, 4} {
		g := NewGroup(workers)
		var sum int64
		for i := 1; i <= 64; i++ {
			i := i
			g.Go(func() error {
				atomic.AddInt64(&sum, int64(i))
				return nil
			})
		}
		if err := g.Wait(); err != nil {
			t.Fatal(err)
		}
		if sum != 64*65/2 {
			t.Fatalf("workers=%d: sum = %d", workers, sum)
		}
	}
}

func TestGroupError(t *testing.T) {
	boom := errors.New("boom")
	g := NewGroup(4)
	for i := 0; i < 16; i++ {
		i := i
		g.Go(func() error {
			if i == 7 {
				return boom
			}
			return nil
		})
	}
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if err := g.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err() = %v", err)
	}
}

func TestGroupBoundedConcurrency(t *testing.T) {
	const workers = 3
	g := NewGroup(workers)
	var cur, peak int64
	for i := 0; i < 40; i++ {
		g.Go(func() error {
			c := atomic.AddInt64(&cur, 1)
			for {
				p := atomic.LoadInt64(&peak)
				if c <= p || atomic.CompareAndSwapInt64(&peak, p, c) {
					break
				}
			}
			runtime.Gosched()
			atomic.AddInt64(&cur, -1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if peak > workers {
		t.Fatalf("observed %d concurrent tasks, bound %d", peak, workers)
	}
}

func TestPipelineVisitsAllInOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		const n = 100
		var produced []int // produce is serial: no locking needed
		consumed := make([]int32, n)
		err := Pipeline(n, workers, func(i int) (int, error) {
			produced = append(produced, i)
			return i * i, nil
		}, func(i, item int) error {
			if item != i*i {
				t.Errorf("consume(%d) got %d", i, item)
			}
			atomic.AddInt32(&consumed[i], 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range produced {
			if p != i {
				t.Fatalf("workers=%d: produce order %v", workers, produced)
			}
		}
		for i, c := range consumed {
			if c != 1 {
				t.Fatalf("workers=%d: index %d consumed %d times", workers, i, c)
			}
		}
	}
}

func TestPipelineProduceError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var produced int32
		err := Pipeline(50, workers, func(i int) (int, error) {
			atomic.AddInt32(&produced, 1)
			if i == 17 {
				return 0, boom
			}
			return i, nil
		}, func(i, item int) error { return nil })
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
		if produced != 18 {
			t.Fatalf("workers=%d: produce ran %d times after failing at 17", workers, produced)
		}
	}
}

func TestPipelineConsumeErrorStopsProduction(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var produced int32
		err := Pipeline(1000, workers, func(i int) (int, error) {
			atomic.AddInt32(&produced, 1)
			return i, nil
		}, func(i, item int) error {
			if i == 3 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
		// Serial stops right after item 3; parallel may overrun by the
		// in-flight window but must not drain the whole range.
		if produced >= 1000 {
			t.Fatalf("workers=%d: produced all %d items after consume error", workers, produced)
		}
	}
}

func TestPipelineBoundedInFlight(t *testing.T) {
	const workers = 3
	var cur, peak int64
	err := Pipeline(40, workers, func(i int) (int, error) {
		atomic.AddInt64(&cur, 1)
		return i, nil
	}, func(i, item int) error {
		c := atomic.LoadInt64(&cur)
		for {
			p := atomic.LoadInt64(&peak)
			if c <= p || atomic.CompareAndSwapInt64(&peak, p, c) {
				break
			}
		}
		runtime.Gosched()
		atomic.AddInt64(&cur, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// In-flight bound: workers consuming + (workers-1) queued + 1 being
	// handed off.
	if limit := int64(2 * workers); peak > limit {
		t.Fatalf("observed %d in-flight items, bound %d", peak, limit)
	}
}
