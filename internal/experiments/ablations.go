package experiments

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"time"

	"mistique"
	"mistique/internal/colstore"
	"mistique/internal/cost"
	"mistique/internal/data"
	"mistique/internal/diag"
	"mistique/internal/nn"
	"mistique/internal/quant"
	"mistique/internal/tensor"
	"mistique/internal/zillow"
)

// This file holds ablations of MISTIQUE's design choices, called out in
// DESIGN.md. They are not paper figures but justify decisions the paper
// makes implicitly: chunk-granularity dedup, the gamma threshold, and the
// pooling level.

// AblationRegistry returns the ablation runners (not part of the default
// "all" set).
func AblationRegistry() (ids []string, byID map[string]Runner) {
	byID = map[string]Runner{
		"ablate-dedup": AblateDedupGranularity,
		"ablate-gamma": AblateGamma,
		"ablate-pool":  AblatePool,
		"xmodel":       CrossModel,
	}
	ids = []string{"ablate-dedup", "ablate-gamma", "ablate-pool", "xmodel"}
	return ids, byID
}

// AblateDedupGranularity compares MISTIQUE's ColumnChunk-level exact dedup
// against the coarser alternative of de-duplicating whole intermediates:
// chunk granularity catches pipelines that share most-but-not-all columns
// (the common case once hyperparameters diverge), table granularity only
// catches exact pipeline prefixes.
func AblateDedupGranularity(o Options) (*Table, error) {
	o = o.withDefaults()
	env := zillow.Env(o.NProps, o.NTrain, o.Seed)
	pipes, err := zillow.Build(env)
	if err != nil {
		return nil, err
	}
	pipes = pipes[:o.Pipelines]

	// Chunk-level: the engine's normal path.
	chunkLevel := func() (int64, error) {
		dir, err := os.MkdirTemp("", "mistique-abl-*")
		if err != nil {
			return 0, err
		}
		defer os.RemoveAll(dir)
		sys, err := mistique.Open(dir, mistique.Config{Store: colstore.Config{Mode: colstore.ModeArrival, DisableApproxDedup: true}})
		if err != nil {
			return 0, err
		}
		for _, p := range pipes {
			if _, err := sys.LogPipeline(p, env); err != nil {
				return 0, err
			}
		}
		return sys.Store().Stats().StoredBytes, nil
	}

	// Table-level: hash whole intermediates; only skip exact table dups.
	tableLevel := func() (int64, error) {
		seen := map[[32]byte]bool{}
		var stored int64
		for _, p := range pipes {
			res, err := p.Run()
			if err != nil {
				return 0, err
			}
			for _, sr := range res.Stages {
				for _, out := range sr.Outputs {
					m, _ := out.Frame.FloatMatrix()
					h := sha256.New()
					var buf [4]byte
					for _, v := range m.Data {
						binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
						h.Write(buf[:])
					}
					var key [32]byte
					copy(key[:], h.Sum(nil))
					if seen[key] {
						continue
					}
					seen[key] = true
					stored += int64(4 * len(m.Data))
				}
			}
		}
		return stored, nil
	}

	// No dedup baseline for reference.
	var none int64
	for _, p := range pipes {
		res, err := p.Run()
		if err != nil {
			return nil, err
		}
		for _, sr := range res.Stages {
			for _, out := range sr.Outputs {
				m, _ := out.Frame.FloatMatrix()
				none += int64(4 * len(m.Data))
			}
		}
	}

	chunk, err := chunkLevel()
	if err != nil {
		return nil, err
	}
	table, err := tableLevel()
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "AblateDedup",
		Title:  fmt.Sprintf("Exact-dedup granularity over %d Zillow pipelines (encoded bytes)", len(pipes)),
		Header: []string{"granularity", "stored", "vs none"},
	}
	t.AddRow("none (STORE_ALL)", fmtBytes(none), "1.0X")
	t.AddRow("whole intermediate", fmtBytes(table), speedup(float64(none), float64(table)))
	t.AddRow("ColumnChunk (MISTIQUE)", fmtBytes(chunk), speedup(float64(none), float64(chunk)))
	t.Note("chunk granularity wins when pipelines share columns but not whole tables (hyperparameter variants)")
	return t, nil
}

// AblateGamma sweeps the adaptive-materialization threshold over the
// Fig. 10 workload: low gamma materializes eagerly (more storage, fast
// queries), high gamma never materializes (no storage, every query
// re-runs).
func AblateGamma(o Options) (*Table, error) {
	o = o.withDefaults()
	if o.Pipelines > 5 {
		o.Pipelines = 5
	}
	t := &Table{
		ID:     "AblateGamma",
		Title:  "Gamma threshold sweep (25-query workload)",
		Header: []string{"gamma (s/B)", "disk after workload", "materialized", "mean query time"},
	}
	for _, gamma := range []float64{1e-10, 1e-8, 1e-6, 1e-3} {
		sys, env, names, cleanup, err := tradSetup(o, mistique.Config{
			Gamma: gamma,
			Cost:  cost.Params{ReadBytesPerSec: 200e6, InputBytesPerSec: 500e6},
		})
		if err != nil {
			return nil, err
		}
		queries := tradQueries(names[1%len(names)])
		var total float64
		n := 0
		for i := 0; i < 25; i++ {
			q := queries[i%len(queries)]
			start := time.Now()
			if _, err := q.run(sys, env, StrategyAuto); err != nil {
				cleanup()
				return nil, err
			}
			total += time.Since(start).Seconds()
			n++
		}
		if err := sys.Flush(); err != nil {
			cleanup()
			return nil, err
		}
		disk, err := sys.DiskBytes()
		if err != nil {
			cleanup()
			return nil, err
		}
		materialized := 0
		for _, mn := range sys.Metadata().Models() {
			for _, it := range sys.Metadata().Model(mn).Intermediates {
				if it.Materialized {
					materialized++
				}
			}
		}
		t.AddRow(fmt.Sprintf("%.0e", gamma), fmtBytes(disk), fmt.Sprintf("%d", materialized), fmtSecs(total/float64(n)))
		cleanup()
	}
	t.Note("storage falls and query time rises monotonically with gamma; the knee is the operating point")
	return t, nil
}

// AblatePool sweeps the pooling level sigma over storage, logging time and
// KNN fidelity — the trade-off behind the paper's choice of pool(2) as the
// default scheme (Secs. 8.2, 8.4, 8.6).
func AblatePool(o Options) (*Table, error) {
	o = o.withDefaults()
	net := nn.VGG16("vgg16", 10, o.VGGWidth, o.Seed)
	imgs, _ := data.Images(o.DNNExamples, 10, o.Seed+1)
	_, mid, _ := vggLayers(net)
	act := net.ForwardBatched(imgs, mid, 256)

	// Fidelity reference: full-precision KNN at the mid layer.
	k := 20
	if k > o.DNNExamples/4 {
		k = o.DNNExamples / 4
	}
	fullRep := act.Flatten()
	truth := diag.KNN(fullRep, fullRep.Row(0), k, 0)

	t := &Table{
		ID:     "AblatePool",
		Title:  "Pooling level sweep on VGG16 (storage + logging time + KNN fidelity at mid layer)",
		Header: []string{"sigma", "stored bytes (all layers)", "log time", "KNN overlap"},
	}
	schemes := []struct {
		label  string
		sigma  int
		scheme mistique.Scheme
	}{
		{"1 (none)", 1, mistique.SchemeFull},
		{"2", 2, mistique.SchemePool2},
		{"4", 4, mistique.SchemePool4},
		{"32 (full collapse)", 32, mistique.SchemePool32},
	}
	for _, sc := range schemes {
		dir, err := os.MkdirTemp("", "mistique-abl-pool-*")
		if err != nil {
			return nil, err
		}
		sys, err := mistique.Open(dir, mistique.Config{RowBlockRows: 256, Store: colstore.Config{Mode: colstore.ModeArrival, DisableExactDedup: true}})
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		logNet := nn.VGG16("vgg16", 10, o.VGGWidth, o.Seed)
		rep, err := sys.LogDNN("vgg16", logNet, imgs, mistique.DNNLogOptions{Scheme: sc.scheme})
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}

		// Fidelity: pooled representation's neighbors vs truth.
		var pooled = act
		if sc.sigma > 1 {
			sig := sc.sigma
			if sig > act.H {
				sig = act.H
			}
			pooled = quant.Pool(act, sig, quant.Avg)
		}
		rep2 := pooled.Flatten()
		overlap := diag.Overlap(truth, diag.KNN(rep2, rep2.Row(0), k, 0))

		t.AddRow(sc.label, fmtBytes(rep.StoredBytes), fmtSecs(rep.Seconds), fmt.Sprintf("%.2f", overlap))
		os.RemoveAll(dir)
	}
	t.Note("paper: pool(2) keeps ~0.74+ KNN overlap at ~1/4 the storage; pool(32) is cheapest but breaks spatial queries")
	return t, nil
}

// CrossModel instantiates Table 1's cross-model MCMR query ("compare the
// representations learned in layer-5 by AlexNet and by VGG16 in Layer-8"):
// SVCCA between the simple CNN's and VGG16's layers, computed on
// intermediates fetched from the store. Deep layers of different
// architectures trained on the same data should correlate more than early
// layers correlate with late ones.
func CrossModel(o Options) (*Table, error) {
	o = o.withDefaults()
	dir, err := os.MkdirTemp("", "mistique-xmodel-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	sys, err := mistique.Open(dir, mistique.Config{
		RowBlockRows: 256,
		Store:        colstore.Config{Mode: colstore.ModeArrival},
	})
	if err != nil {
		return nil, err
	}
	imgs, labels := data.Images(o.DNNExamples, 10, o.Seed+1)

	cnn := nn.SimpleCNN("cnn", 10, o.Seed)
	cnn.TrainEpochs(imgs, labels, 2, 32, 0.03, nil)
	if _, err := sys.LogDNN("cnn", cnn, imgs, mistique.DNNLogOptions{Scheme: mistique.SchemePool2}); err != nil {
		return nil, err
	}
	vgg := nn.VGG16("vgg16", 10, o.VGGWidth, o.Seed+2)
	vgg.FreezeConv()
	vgg.TrainEpochs(imgs, labels, 1, 32, 0.03, nil)
	if _, err := sys.LogDNN("vgg16", vgg, imgs, mistique.DNNLogOptions{Scheme: mistique.SchemePool2}); err != nil {
		return nil, err
	}

	fetch := func(model, layer string) (*tensor.Dense, error) {
		res, err := sys.GetIntermediate(model, layer, nil, 0)
		if err != nil {
			return nil, err
		}
		return subsampleCols(res.Data, 12), nil
	}

	t := &Table{
		ID:     "CrossModel",
		Title:  "Cross-model SVCCA: CIFAR10_CNN layer vs CIFAR10_VGG16 layer (Table 1 MCMR query)",
		Header: []string{"cnn layer", "vgg16 layer", "mean CCA"},
	}
	pairs := [][2]string{
		{"relu1_1", "relu1_1"},   // early vs early
		{"relu2_2", "relu3_3"},   // mid vs mid
		{"relu_fc1", "relu_fc1"}, // head vs head
		{"relu1_1", "relu_fc1"},  // early vs late (should be lowest)
	}
	for _, pr := range pairs {
		a, err := fetch("cnn", pr[0])
		if err != nil {
			return nil, err
		}
		b, err := fetch("vgg16", pr[1])
		if err != nil {
			return nil, err
		}
		cca, err := diag.SVCCA(a, b)
		if err != nil {
			return nil, err
		}
		t.AddRow(pr[0], pr[1], fmt.Sprintf("%.4f", cca))
	}
	t.Note("matched depths correlate more than mismatched ones; both models' heads converge toward the task")
	return t, nil
}
