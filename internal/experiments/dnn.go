package experiments

import (
	"fmt"
	"os"
	"time"

	"mistique"
	"mistique/internal/colstore"
	"mistique/internal/cost"
	"mistique/internal/data"
	"mistique/internal/diag"
	"mistique/internal/nn"
	"mistique/internal/tensor"
)

// vggLayers returns the three reference layers of the Fig. 5 DNN queries:
// the first conv (the paper's Layer1, huge and near the input), a middle
// conv (Layer11) and the final logits (Layer21).
func vggLayers(net *nn.Network) (first, mid, last int) {
	names := net.LayerNames()
	first = 0
	mid = -1
	for i, n := range names {
		if n == "conv3_3" {
			mid = i
		}
	}
	if mid < 0 {
		mid = net.NumLayers() / 2
	}
	last = net.NumLayers() - 1
	return first, mid, last
}

// dnnSystem logs the requested layers of a VGG16 model into a fresh system.
func dnnSystem(o Options, scheme mistique.Scheme, layers []int) (*mistique.System, *nn.Network, *tensor.T4, []int, func(), error) {
	dir, err := os.MkdirTemp("", "mistique-dnn-*")
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	cleanup := func() { os.RemoveAll(dir) }
	sys, err := mistique.Open(dir, mistique.Config{
		RowBlockRows: 256,
		Store:        colstore.Config{Mode: colstore.ModeArrival},
	})
	if err != nil {
		cleanup()
		return nil, nil, nil, nil, nil, err
	}
	net := nn.VGG16("vgg16", 10, o.VGGWidth, o.Seed)
	net.FreezeConv()
	imgs, labels := data.Images(o.DNNExamples, 10, o.Seed+1)
	if _, err := sys.LogDNN("vgg16", net, imgs, mistique.DNNLogOptions{Scheme: scheme, Layers: layers}); err != nil {
		cleanup()
		return nil, nil, nil, nil, nil, err
	}
	if err := sys.Store().DropCache(); err != nil {
		cleanup()
		return nil, nil, nil, nil, nil, err
	}
	return sys, net, imgs, labels, cleanup, nil
}

// dnnQuery is one Table 5 DNN query at a specific layer.
type dnnQuery struct {
	name     string
	category string
	run      func(sys *mistique.System, layer string, labels []int, st cost.Strategy) error
}

func dnnQueries() []dnnQuery {
	return []dnnQuery{
		{"POINTQ", "FCFR", func(sys *mistique.System, layer string, _ []int, st cost.Strategy) error {
			res, _, err := fetchSecs(sys, "vgg16", layer, []string{"u3"}, 64, st)
			if err != nil {
				return err
			}
			_, err = diag.PointQuery(res.Data.Col(0), 33)
			return err
		}},
		{"TOPK", "FCFR", func(sys *mistique.System, layer string, _ []int, st cost.Strategy) error {
			res, _, err := fetchSecs(sys, "vgg16", layer, []string{"u1"}, 0, st)
			if err != nil {
				return err
			}
			diag.TopK(res.Data.Col(0), 10)
			return nil
		}},
		{"COL_DIST", "FCMR", func(sys *mistique.System, layer string, _ []int, st cost.Strategy) error {
			res, _, err := fetchSecs(sys, "vgg16", layer, []string{"u0"}, 0, st)
			if err != nil {
				return err
			}
			diag.ColDist(res.Data.Col(0), 32)
			return nil
		}},
		{"KNN", "MCFR", func(sys *mistique.System, layer string, _ []int, st cost.Strategy) error {
			res, _, err := fetchSecs(sys, "vgg16", layer, nil, 0, st)
			if err != nil {
				return err
			}
			diag.KNN(res.Data, res.Data.Row(5), 10, 5)
			return nil
		}},
		{"ROW_DIFF", "MCFR", func(sys *mistique.System, layer string, _ []int, st cost.Strategy) error {
			res, _, err := fetchSecs(sys, "vgg16", layer, nil, 8, st)
			if err != nil {
				return err
			}
			_, err = diag.RowDiff(res.Data.Row(3), res.Data.Row(7))
			return err
		}},
		{"VIS", "MCMR", func(sys *mistique.System, layer string, labels []int, st cost.Strategy) error {
			res, _, err := fetchSecs(sys, "vgg16", layer, nil, 0, st)
			if err != nil {
				return err
			}
			_, err = diag.VIS(res.Data, labels[:res.Data.Rows], 10)
			return err
		}},
		{"SVCCA", "MCMR", func(sys *mistique.System, layer string, _ []int, st cost.Strategy) error {
			rep, _, err := fetchSecs(sys, "vgg16", layer, nil, 0, st)
			if err != nil {
				return err
			}
			logits, _, err := fetchSecs(sys, "vgg16", "logits", nil, 0, st)
			if err != nil {
				return err
			}
			a := subsampleCols(rep.Data, 16)
			_, err = diag.SVCCA(a, logits.Data)
			return err
		}},
	}
}

// subsampleCols keeps every k-th column so SVCCA's rows >= cols holds on
// wide conv layers (the paper subsamples units the same way).
func subsampleCols(d *tensor.Dense, maxCols int) *tensor.Dense {
	if d.Cols <= maxCols {
		return d
	}
	stride := d.Cols / maxCols
	idx := make([]int, 0, maxCols)
	for j := 0; j < d.Cols && len(idx) < maxCols; j += stride {
		idx = append(idx, j)
	}
	return d.SelectCols(idx)
}

// Fig5bcd reproduces the DNN end-to-end query times at the last, middle
// and first layers (Figs. 5b, 5c, 5d), read vs re-run.
func Fig5bcd(o Options) (*Table, error) {
	o = o.withDefaults()
	net := nn.VGG16("probe", 10, o.VGGWidth, o.Seed)
	first, mid, last := vggLayers(net)
	sys, net, _, labels, cleanup, err := dnnSystem(o, mistique.SchemePool2, []int{first, mid, last})
	if err != nil {
		return nil, err
	}
	defer cleanup()
	names := net.LayerNames()

	t := &Table{
		ID:     "Fig5bcd",
		Title:  "DNN end-to-end query time by layer: READ vs RERUN (asterisk = cost-model choice)",
		Header: []string{"layer", "query", "category", "read", "rerun", "speedup", "chosen"},
	}
	for _, li := range []int{last, mid, first} {
		layer := names[li]
		estRead, estRerun, err := sys.Estimate("vgg16", layer, 0)
		if err != nil {
			return nil, err
		}
		chosen := cost.Choose(estRerun, estRead).String()
		for _, q := range dnnQueries() {
			if li == last && q.name == "SVCCA" {
				continue // logits vs logits is degenerate
			}
			readSecs, err := runMedian(3, func() (float64, error) {
				start := time.Now()
				if err := q.run(sys, layer, labels, cost.Read); err != nil {
					return 0, err
				}
				return time.Since(start).Seconds(), nil
			})
			if err != nil {
				return nil, fmt.Errorf("%s/%s READ: %w", layer, q.name, err)
			}
			rerunSecs, err := runMedian(3, func() (float64, error) {
				start := time.Now()
				if err := q.run(sys, layer, labels, cost.Rerun); err != nil {
					return 0, err
				}
				return time.Since(start).Seconds(), nil
			})
			if err != nil {
				return nil, fmt.Errorf("%s/%s RERUN: %w", layer, q.name, err)
			}
			t.AddRow(layer, q.name, q.category,
				fmtSecs(readSecs)+star(chosen == "READ"),
				fmtSecs(rerunSecs)+star(chosen == "RERUN"),
				speedup(rerunSecs, readSecs), chosen)
		}
	}
	t.Note("paper: reading wins 60-210X at the last layer, 2-42X mid-network; re-running can win at Layer1 (large, near input)")
	return t, nil
}

// Fig6b reproduces the DNN storage comparison: STORE_ALL vs the
// quantization schemes, for the simple CNN and the fine-tuned VGG16, over
// training checkpoints. DEDUP is applied on top of POOL2 as in the paper.
func Fig6b(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "Fig6b",
		Title:  fmt.Sprintf("DNN storage for %d checkpoint(s): quantization schemes (+DEDUP on pool2)", o.Epochs),
		Header: []string{"model", "scheme", "disk", "encoded", "vs STORE_ALL"},
	}

	type modelCase struct {
		name   string
		build  func() *nn.Network
		frozen bool
	}
	cases := []modelCase{
		{"CIFAR10_CNN", func() *nn.Network { return nn.SimpleCNN("cnn", 10, o.Seed) }, false},
		{"CIFAR10_VGG16", func() *nn.Network {
			n := nn.VGG16("vgg16", 10, o.VGGWidth, o.Seed)
			n.FreezeConv()
			return n
		}, true},
	}
	schemes := []struct {
		label  string
		scheme mistique.Scheme
		dedup  bool
	}{
		{"STORE_ALL (float32)", mistique.SchemeFull, false},
		{"LP_QT (float16)", mistique.SchemeLP, false},
		{"8BIT_QT", mistique.Scheme8Bit, false},
		{"POOL_QT sigma=2", mistique.SchemePool2, false},
		{"POOL_QT sigma=32", mistique.SchemePool32, false},
		{"POOL2 + DEDUP", mistique.SchemePool2, true},
	}

	imgs, labels := data.Images(o.DNNExamples, 10, o.Seed+1)
	for _, mc := range cases {
		var storeAllDisk int64
		for _, sc := range schemes {
			dir, err := os.MkdirTemp("", "mistique-fig6b-*")
			if err != nil {
				return nil, err
			}
			cfg := mistique.Config{RowBlockRows: 256, Store: colstore.Config{Mode: colstore.ModeArrival}}
			if !sc.dedup {
				cfg.Store.DisableExactDedup = true
			}
			sys, err := mistique.Open(dir, cfg)
			if err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			net := mc.build()
			for e := 0; e < o.Epochs; e++ {
				name := fmt.Sprintf("%s@e%d", mc.name, e)
				if _, err := sys.LogDNN(name, net, imgs, mistique.DNNLogOptions{Scheme: sc.scheme}); err != nil {
					os.RemoveAll(dir)
					return nil, fmt.Errorf("%s %s epoch %d: %w", mc.name, sc.label, e, err)
				}
				if e < o.Epochs-1 {
					net.TrainEpochs(imgs, labels, 1, 32, 0.02, nil)
				}
			}
			if err := sys.Flush(); err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			disk, err := sys.DiskBytes()
			if err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			encoded := sys.Store().Stats().StoredBytes
			if sc.scheme == mistique.SchemeFull {
				storeAllDisk = disk
			}
			ratio := "1.0X"
			if storeAllDisk > 0 && disk > 0 {
				ratio = speedup(float64(storeAllDisk), float64(disk))
			}
			t.AddRow(mc.name, sc.label, fmtBytes(disk), fmtBytes(encoded), ratio)
			os.RemoveAll(dir)
		}
	}
	t.Note("paper: LP 2X, 8BIT ~3.3X, pool(2) ~6.2X, pool(32) ~95X; DEDUP adds ~10X more for the frozen-conv VGG16 but little for the CNN")
	return t, nil
}

// Fig7 validates the cost model's two sides: (a) time to re-run the model
// up to each layer (fixed model-load cost plus per-layer growth), and (b)
// time to read each stored intermediate under each quantization scheme.
func Fig7(o Options) (*Table, error) {
	o = o.withDefaults()
	net := nn.VGG16("probe", 10, o.VGGWidth, o.Seed)
	first, mid, last := vggLayers(net)
	layers := []int{first, mid, last}

	t := &Table{
		ID:     "Fig7",
		Title:  "Cost model components: re-run time per layer (a) and read time per layer/scheme (b)",
		Header: []string{"layer", "rerun (measured)", "LP_QT read", "8BIT_QT read", "pool(2) read", "pool(32) read"},
	}

	// (a) measured re-run time to each layer.
	imgs, _ := data.Images(o.DNNExamples, 10, o.Seed+1)
	rerunSecs := make(map[int]float64)
	probeNet := nn.VGG16("probe", 10, o.VGGWidth, o.Seed)
	for _, li := range layers {
		start := time.Now()
		probeNet.ForwardBatched(imgs, li, 256)
		rerunSecs[li] = time.Since(start).Seconds()
	}

	// (b) read time per scheme.
	readSecs := make(map[mistique.Scheme]map[int]float64)
	for _, scheme := range []mistique.Scheme{mistique.SchemeLP, mistique.Scheme8Bit, mistique.SchemePool2, mistique.SchemePool32} {
		sys, snet, _, _, cleanup, err := dnnSystem(o, scheme, layers)
		if err != nil {
			return nil, err
		}
		names := snet.LayerNames()
		readSecs[scheme] = make(map[int]float64)
		for _, li := range layers {
			secs, err := runMedian(3, func() (float64, error) {
				if err := sys.Store().DropCache(); err != nil {
					return 0, err
				}
				_, secs, err := fetchSecs(sys, "vgg16", names[li], nil, 0, cost.Read)
				return secs, err
			})
			if err != nil {
				cleanup()
				return nil, err
			}
			readSecs[scheme][li] = secs
		}
		cleanup()
	}

	names := net.LayerNames()
	for _, li := range layers {
		t.AddRow(names[li],
			fmtSecs(rerunSecs[li]),
			fmtSecs(readSecs[mistique.SchemeLP][li]),
			fmtSecs(readSecs[mistique.Scheme8Bit][li]),
			fmtSecs(readSecs[mistique.SchemePool2][li]),
			fmtSecs(readSecs[mistique.SchemePool32][li]))
	}
	t.Note("paper: re-run grows with layer depth (plus fixed load cost); reads rank 8BIT (reconstruction) > LP > pool(2) > pool(32)")
	return t, nil
}

// Fig8 compares measured read/re-run times against the cost model's
// predictions across layers and n_ex, verifying the linear trade-off and
// that the predicted winner matches the measured winner.
func Fig8(o Options) (*Table, error) {
	o = o.withDefaults()
	net := nn.VGG16("probe", 10, o.VGGWidth, o.Seed)
	first, mid, last := vggLayers(net)
	quarter := (first + mid) / 2
	threeQ := (mid + last) / 2
	layers := []int{first, quarter, mid, threeQ, last}

	sys, snet, imgs, _, cleanup, err := dnnSystem(o, mistique.SchemePool2, layers)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	names := snet.LayerNames()

	// Calibrate rho_d (read bytes/sec) from one full read of the mid layer.
	if err := sys.Store().DropCache(); err != nil {
		return nil, err
	}
	calib, calibSecs, err := fetchSecs(sys, "vgg16", names[mid], nil, 0, cost.Read)
	if err != nil {
		return nil, err
	}
	calibBytes := float64(calib.Data.Rows*calib.Data.Cols) * 4
	rho := calibBytes / calibSecs

	t := &Table{
		ID:     "Fig8",
		Title:  "Measured vs predicted read/re-run trade-off (pool(2) storage)",
		Header: []string{"layer", "n_ex", "read meas", "rerun meas", "read pred", "rerun pred", "winner meas", "winner pred", "agree"},
	}
	agree, total := 0, 0
	for _, li := range layers {
		layer := names[li]
		for _, frac := range []int{8, 4, 2, 1} {
			nEx := imgs.N / frac
			if err := sys.Store().DropCache(); err != nil {
				return nil, err
			}
			readRes, readMeas, err := fetchSecs(sys, "vgg16", layer, nil, nEx, cost.Read)
			if err != nil {
				return nil, err
			}
			_, rerunMeas, err := fetchSecs(sys, "vgg16", layer, nil, nEx, cost.Rerun)
			if err != nil {
				return nil, err
			}
			readPred := float64(readRes.Data.Rows*readRes.Data.Cols) * 4 / rho
			_, rerunPred, err := sys.Estimate("vgg16", layer, nEx)
			if err != nil {
				return nil, err
			}
			wm := cost.Choose(rerunMeas, readMeas).String()
			wp := cost.Choose(rerunPred, readPred).String()
			ok := "yes"
			if wm != wp {
				ok = "NO"
			} else {
				agree++
			}
			total++
			t.AddRow(layer, fmt.Sprintf("%d", nEx),
				fmtSecs(readMeas), fmtSecs(rerunMeas),
				fmtSecs(readPred), fmtSecs(rerunPred), wm, wp, ok)
		}
	}
	t.Note("cost model picked the measured winner in %d/%d cells", agree, total)
	t.Note("paper: both sides scale linearly in n_ex; model predicts the crossover correctly")
	return t, nil
}
