package experiments

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"mistique"
	"mistique/internal/colstore"
	"mistique/internal/cost"
	"mistique/internal/diag"
	"mistique/internal/frame"
	"mistique/internal/linalg"
	"mistique/internal/pipeline"
	"mistique/internal/zillow"
)

// tradSetup logs the first o.Pipelines Zillow pipelines into a fresh
// system and returns it with the environment tables.
func tradSetup(o Options, cfg mistique.Config) (*mistique.System, map[string]*frame.Frame, []string, func(), error) {
	dir, err := os.MkdirTemp("", "mistique-exp-*")
	if err != nil {
		return nil, nil, nil, nil, err
	}
	cleanup := func() { os.RemoveAll(dir) }
	sys, err := mistique.Open(dir, cfg)
	if err != nil {
		cleanup()
		return nil, nil, nil, nil, err
	}
	env := zillow.Env(o.NProps, o.NTrain, o.Seed)
	pipes, err := zillow.Build(env)
	if err != nil {
		cleanup()
		return nil, nil, nil, nil, err
	}
	var names []string
	for _, p := range pipes[:o.Pipelines] {
		if _, err := sys.LogPipeline(p, env); err != nil {
			cleanup()
			return nil, nil, nil, nil, fmt.Errorf("log %s: %w", p.Name, err)
		}
		names = append(names, p.Name)
	}
	return sys, env, names, cleanup, nil
}

// tradQuery is one Table 5 TRAD query: it fetches intermediates with the
// given strategy and runs its analysis.
type tradQuery struct {
	name     string
	category string
	run      func(sys *mistique.System, env map[string]*frame.Frame, strategy cost.Strategy) (float64, error)
}

// StrategyAuto asks the engine's cost model to choose (GetIntermediate
// path, which also drives adaptive materialization).
const StrategyAuto cost.Strategy = -1

// fetchSecs fetches with a forced strategy (or the cost-model path for
// StrategyAuto) and returns fetch time.
func fetchSecs(sys *mistique.System, model, interm string, cols []string, nEx int, st cost.Strategy) (*mistique.Result, float64, error) {
	var res *mistique.Result
	var err error
	if st == StrategyAuto {
		res, err = sys.GetIntermediate(model, interm, cols, nEx)
	} else {
		res, err = sys.Fetch(model, interm, cols, nEx, st)
	}
	if err != nil {
		return nil, 0, err
	}
	return res, res.FetchSeconds, nil
}

// holdoutGroups derives the categorical house-type labels for the holdout
// predictions (group labels come from the raw input, not the store).
func holdoutGroups(env map[string]*frame.Frame, n int) []string {
	joined := env["test"].JoinInner(env["properties"], "parcelid")
	types := joined.Col("propertytype").S
	if len(types) > n {
		types = types[:n]
	}
	return types
}

func tradQueries(model2 string) []tradQuery {
	const model = "p1_v0"
	return []tradQuery{
		{name: "POINTQ", category: "FCFR", run: func(sys *mistique.System, env map[string]*frame.Frame, st cost.Strategy) (float64, error) {
			res, secs, err := fetchSecs(sys, model, "dropped", []string{"lotsizesquarefeet"}, 136, st)
			if err != nil {
				return 0, err
			}
			if _, err := diag.PointQuery(res.Data.Col(0), 135); err != nil {
				return 0, err
			}
			return secs, nil
		}},
		{name: "TOPK", category: "FCFR", run: func(sys *mistique.System, env map[string]*frame.Frame, st cost.Strategy) (float64, error) {
			feat, s1, err := fetchSecs(sys, model, "dropped", []string{"yearbuilt"}, 0, st)
			if err != nil {
				return 0, err
			}
			pred, s2, err := fetchSecs(sys, model, "model", []string{"pred", "logerror"}, 0, st)
			if err != nil {
				return 0, err
			}
			top := diag.TopK(feat.Data.Col(0), 10)
			for _, i := range top {
				if i < pred.Data.Rows {
					_ = pred.Data.At(i, 0) - pred.Data.At(i, 1)
				}
			}
			return s1 + s2, nil
		}},
		{name: "COL_DIFF", category: "FCMR", run: func(sys *mistique.System, env map[string]*frame.Frame, st cost.Strategy) (float64, error) {
			a, s1, err := fetchSecs(sys, model, "pred_holdout", []string{"pred"}, 0, st)
			if err != nil {
				return 0, err
			}
			b, s2, err := fetchSecs(sys, model2, "pred_holdout", []string{"pred"}, 0, st)
			if err != nil {
				return 0, err
			}
			groups := holdoutGroups(env, a.Data.Rows)
			if _, err := diag.ColDiff(a.Data.Col(0)[:len(groups)], b.Data.Col(0)[:len(groups)], groups); err != nil {
				return 0, err
			}
			return s1 + s2, nil
		}},
		{name: "COL_DIST", category: "FCMR", run: func(sys *mistique.System, env map[string]*frame.Frame, st cost.Strategy) (float64, error) {
			res, secs, err := fetchSecs(sys, model, "model", []string{"pred", "logerror"}, 0, st)
			if err != nil {
				return 0, err
			}
			errs := make([]float32, res.Data.Rows)
			for i := range errs {
				errs[i] = res.Data.At(i, 0) - res.Data.At(i, 1)
			}
			diag.ColDist(errs, 20)
			return secs, nil
		}},
		{name: "KNN", category: "MCFR", run: func(sys *mistique.System, env map[string]*frame.Frame, st cost.Strategy) (float64, error) {
			feat, s1, err := fetchSecs(sys, model, "dropped", nil, 0, st)
			if err != nil {
				return 0, err
			}
			diag.KNN(feat.Data, feat.Data.Row(50), 10, 50)
			return s1, nil
		}},
		{name: "ROW_DIFF", category: "MCFR", run: func(sys *mistique.System, env map[string]*frame.Frame, st cost.Strategy) (float64, error) {
			res, secs, err := fetchSecs(sys, model, "dropped", nil, 56, st)
			if err != nil {
				return 0, err
			}
			if _, err := diag.RowDiff(res.Data.Row(50), res.Data.Row(55)); err != nil {
				return 0, err
			}
			return secs, nil
		}},
		{name: "VIS", category: "MCMR", run: func(sys *mistique.System, env map[string]*frame.Frame, st cost.Strategy) (float64, error) {
			res, secs, err := fetchSecs(sys, model, "dropped", nil, 0, st)
			if err != nil {
				return 0, err
			}
			labels := make([]int, res.Data.Rows)
			for i := range labels {
				labels[i] = i % 5 // five house types
			}
			if _, err := diag.VIS(res.Data, labels, 5); err != nil {
				return 0, err
			}
			return secs, nil
		}},
		{name: "CORR", category: "MCMR", run: func(sys *mistique.System, env map[string]*frame.Frame, st cost.Strategy) (float64, error) {
			feat, s1, err := fetchSecs(sys, model, "dropped", nil, 0, st)
			if err != nil {
				return 0, err
			}
			pred, s2, err := fetchSecs(sys, model, "model", []string{"pred", "logerror"}, 0, st)
			if err != nil {
				return 0, err
			}
			n := minI(feat.Data.Rows, pred.Data.Rows)
			resid := make([]float64, n)
			for i := 0; i < n; i++ {
				resid[i] = float64(pred.Data.At(i, 0) - pred.Data.At(i, 1))
			}
			col := make([]float64, n)
			for j := 0; j < feat.Data.Cols; j++ {
				for i := 0; i < n; i++ {
					col[i] = float64(feat.Data.At(i, j))
				}
				linalg.Pearson(col, resid)
			}
			return s1 + s2, nil
		}},
	}
}

// Fig5a reproduces the TRAD end-to-end query-time comparison: each Table 5
// query executed by reading stored intermediates vs re-running the
// pipeline, with the cost model's choice starred.
func Fig5a(o Options) (*Table, error) {
	o = o.withDefaults()
	if o.Pipelines < 2 {
		o.Pipelines = 2
	}
	sys, env, names, cleanup, err := tradSetup(o, mistique.Config{
		Store: colstore.Config{Mode: colstore.ModeSimilarity},
	})
	if err != nil {
		return nil, err
	}
	defer cleanup()
	if err := sys.Store().DropCache(); err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "Fig5a",
		Title:  "TRAD end-to-end query time: READ vs RERUN (asterisk = cost-model choice)",
		Header: []string{"query", "category", "read", "rerun", "speedup", "chosen"},
	}
	for _, q := range tradQueries(names[1]) {
		readSecs, err := runMedian(3, func() (float64, error) { return q.run(sys, env, cost.Read) })
		if err != nil {
			return nil, fmt.Errorf("%s READ: %w", q.name, err)
		}
		rerunSecs, err := runMedian(3, func() (float64, error) { return q.run(sys, env, cost.Rerun) })
		if err != nil {
			return nil, fmt.Errorf("%s RERUN: %w", q.name, err)
		}
		estRead, estRerun, err := sys.Estimate("p1_v0", "dropped", 0)
		if err != nil {
			return nil, err
		}
		chosen := cost.Choose(estRerun, estRead).String()
		t.AddRow(q.name, q.category, fmtSecs(readSecs)+star(chosen == "READ"), fmtSecs(rerunSecs)+star(chosen == "RERUN"), speedup(rerunSecs, readSecs), chosen)
	}
	t.Note("paper: reading beats re-running for every TRAD query (2.5X-390X)")
	return t, nil
}

func star(b bool) string {
	if b {
		return " *"
	}
	return ""
}

func runMedian(n int, f func() (float64, error)) (float64, error) {
	vals := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		v, err := f()
		if err != nil {
			return 0, err
		}
		vals = append(vals, v)
	}
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	return vals[len(vals)/2], nil
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Fig6a reproduces the Zillow storage comparison: STORE_ALL vs DEDUP total
// footprint plus the cumulative growth curve over pipelines.
func Fig6a(o Options) (*Table, error) {
	o = o.withDefaults()
	env := zillow.Env(o.NProps, o.NTrain, o.Seed)
	rawBytes := gzippedEnvBytes(env)

	type runOut struct {
		disk   int64
		stored int64
		curve  []int64
	}
	runStrategy := func(cfg colstore.Config) (runOut, error) {
		dir, err := os.MkdirTemp("", "mistique-fig6a-*")
		if err != nil {
			return runOut{}, err
		}
		defer os.RemoveAll(dir)
		sys, err := mistique.Open(dir, mistique.Config{Store: cfg})
		if err != nil {
			return runOut{}, err
		}
		pipes, err := zillow.Build(env)
		if err != nil {
			return runOut{}, err
		}
		var out runOut
		for _, p := range pipes[:o.Pipelines] {
			if _, err := sys.LogPipeline(p, env); err != nil {
				return runOut{}, err
			}
			out.curve = append(out.curve, sys.Store().Stats().StoredBytes)
		}
		if err := sys.Flush(); err != nil {
			return runOut{}, err
		}
		out.disk, err = sys.DiskBytes()
		out.stored = sys.Store().Stats().StoredBytes
		return out, err
	}

	storeAll, err := runStrategy(colstore.Config{DisableExactDedup: true, DisableApproxDedup: true, Mode: colstore.ModeArrival})
	if err != nil {
		return nil, err
	}
	dedup, err := runStrategy(colstore.Config{Mode: colstore.ModeSimilarity})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "Fig6a",
		Title:  fmt.Sprintf("Zillow storage cost over %d pipelines", o.Pipelines),
		Header: []string{"strategy", "disk (compressed)", "encoded (pre-gzip)", "vs STORE_ALL"},
	}
	t.AddRow("raw input (gzip)", fmtBytes(rawBytes), "-", "-")
	t.AddRow("STORE_ALL", fmtBytes(storeAll.disk), fmtBytes(storeAll.stored), "1.0X")
	t.AddRow("DEDUP", fmtBytes(dedup.disk), fmtBytes(dedup.stored), speedup(float64(storeAll.disk), float64(dedup.disk)))
	// Cumulative curve at checkpoints.
	for _, frac := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		i := int(frac*float64(o.Pipelines)) - 1
		if i < 0 {
			i = 0
		}
		t.AddRow(fmt.Sprintf("cumulative @%d pipelines", i+1),
			"-",
			fmt.Sprintf("STORE_ALL %s / DEDUP %s", fmtBytes(storeAll.curve[i]), fmtBytes(dedup.curve[i])), "-")
	}
	t.Note("paper: 168MB raw -> 67GB STORE_ALL vs 611MB DEDUP (110X); DEDUP curve stays nearly flat")
	return t, nil
}

func gzippedEnvBytes(env map[string]*frame.Frame) int64 {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	for _, f := range env {
		m, _ := f.FloatMatrix()
		b := make([]byte, 0, len(m.Data)*4)
		for _, v := range m.Data {
			b = binary.LittleEndian.AppendUint32(b, math.Float32bits(v))
		}
		zw.Write(b)
	}
	zw.Close()
	return int64(buf.Len())
}

// Fig10 reproduces the adaptive-materialization experiment: a 25-query
// random workload over the Zillow models under STORE_ALL, DEDUP and
// ADAPTIVE, reporting footprint and the response-time trajectory of three
// query kinds.
func Fig10(o Options) (*Table, error) {
	o = o.withDefaults()
	if o.Pipelines > 10 {
		o.Pipelines = 10 // the workload queries a handful of models
	}

	type strat struct {
		name string
		cfg  mistique.Config
	}
	strategies := []strat{
		{"STORE_ALL", mistique.Config{Store: colstore.Config{DisableExactDedup: true, DisableApproxDedup: true, Mode: colstore.ModeArrival}}},
		{"DEDUP", mistique.Config{Store: colstore.Config{Mode: colstore.ModeSimilarity}}},
		// Gamma is the paper's 0.5 s/KB scaled to our dataset sizes so the
		// hot intermediates cross the threshold within a few queries.
		{"ADAPTIVE", mistique.Config{Gamma: 1e-7, Store: colstore.Config{Mode: colstore.ModeSimilarity},
			Cost: cost.Params{ReadBytesPerSec: 200e6, InputBytesPerSec: 500e6}}},
	}

	t := &Table{
		ID:     "Fig10",
		Title:  "Adaptive materialization: storage footprint and query-time decay (25-query workload, gamma=0.5s/KB)",
		Header: []string{"strategy", "disk after workload", "query", "first", "last", "improvement"},
	}

	kinds := []string{"VIS", "COL_DIFF", "COL_DIST"}
	for _, st := range strategies {
		sys, env, names, cleanup, err := tradSetup(o, st.cfg)
		if err != nil {
			return nil, err
		}
		firstSeen := map[string]float64{}
		lastSeen := map[string]float64{}
		rng := rand.New(rand.NewSource(o.Seed + 99))
		queries := tradQueries(names[1%len(names)])
		pick := map[string]tradQuery{}
		for _, q := range queries {
			pick[q.name] = q
		}
		for i := 0; i < 25; i++ {
			kind := kinds[rng.Intn(len(kinds))]
			q := pick[kind]
			start := time.Now()
			// Under test the engine chooses the strategy itself: use the
			// cost-model path via GetIntermediate-based fetches.
			if _, err := q.run(sys, env, chooseFor(sys, st.name)); err != nil {
				cleanup()
				return nil, fmt.Errorf("%s query %s: %w", st.name, kind, err)
			}
			secs := time.Since(start).Seconds()
			if _, ok := firstSeen[kind]; !ok {
				firstSeen[kind] = secs
			}
			lastSeen[kind] = secs
		}
		if err := sys.Flush(); err != nil {
			cleanup()
			return nil, err
		}
		disk, err := sys.DiskBytes()
		if err != nil {
			cleanup()
			return nil, err
		}
		for i, kind := range kinds {
			diskCell := ""
			if i == 0 {
				diskCell = fmtBytes(disk)
			}
			t.AddRow(st.name, diskCell, kind, fmtSecs(firstSeen[kind]), fmtSecs(lastSeen[kind]), speedup(firstSeen[kind], lastSeen[kind]))
		}
		cleanup()
	}
	t.Note("paper: ADAPTIVE stores far less than STORE_ALL/DEDUP; VIS and COL_DIFF decay to READ speed after materialization, COL_DIST stays flat")
	return t, nil
}

// chooseFor maps a strategy name to the fetch strategy its system can use:
// STORE_ALL and DEDUP read (everything is materialized); ADAPTIVE uses the
// cost-model path, which re-runs until gamma crosses the threshold and the
// intermediate materializes, after which queries read.
func chooseFor(_ *mistique.System, strat string) cost.Strategy {
	if strat == "ADAPTIVE" {
		return StrategyAuto
	}
	return cost.Read
}

// Fig11 reproduces the logging-overhead comparison: pipeline execution
// time with no logging vs logging under STORE_ALL, DEDUP and ADAPTIVE for
// the P1, P5 and P9 templates.
func Fig11(o Options) (*Table, error) {
	o = o.withDefaults()
	env := zillow.Env(o.NProps, o.NTrain, o.Seed)
	specs, err := zillow.Specs()
	if err != nil {
		return nil, err
	}
	specOf := map[string]pipeline.Spec{}
	for _, s := range specs {
		specOf[s.Name] = s
	}

	t := &Table{
		ID:     "Fig11",
		Title:  "TRAD pipeline logging overhead (synchronous writes)",
		Header: []string{"pipeline", "no logging", "STORE_ALL", "DEDUP", "ADAPTIVE"},
	}

	for _, name := range []string{"p1_v0", "p5_v0", "p9_v0"} {
		spec := specOf[name]
		timeRun := func(cfg *mistique.Config) (float64, error) {
			p, err := pipeline.New(spec)
			if err != nil {
				return 0, err
			}
			if cfg == nil {
				if err := p.Bind(env, 0); err != nil {
					return 0, err
				}
				start := time.Now()
				if _, err := p.Run(); err != nil {
					return 0, err
				}
				return time.Since(start).Seconds(), nil
			}
			dir, err := os.MkdirTemp("", "mistique-fig11-*")
			if err != nil {
				return 0, err
			}
			defer os.RemoveAll(dir)
			sys, err := mistique.Open(dir, *cfg)
			if err != nil {
				return 0, err
			}
			start := time.Now()
			if _, err := sys.LogPipeline(p, env); err != nil {
				return 0, err
			}
			if err := sys.Store().Flush(); err != nil { // synchronous write
				return 0, err
			}
			return time.Since(start).Seconds(), nil
		}
		none, err := timeRun(nil)
		if err != nil {
			return nil, err
		}
		all, err := timeRun(&mistique.Config{Store: colstore.Config{DisableExactDedup: true, DisableApproxDedup: true, Mode: colstore.ModeArrival}})
		if err != nil {
			return nil, err
		}
		dd, err := timeRun(&mistique.Config{Store: colstore.Config{Mode: colstore.ModeSimilarity}})
		if err != nil {
			return nil, err
		}
		ad, err := timeRun(&mistique.Config{Gamma: 1e9})
		if err != nil {
			return nil, err
		}
		t.AddRow(name, fmtSecs(none), fmtSecs(all), fmtSecs(dd), fmtSecs(ad))
	}
	t.Note("paper: STORE_ALL is the slowest (most data written); ADAPTIVE ~ no-logging; DEDUP modest")
	return t, nil
}
