package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tiny is an options preset sized for CI: every experiment runs end to end
// in seconds while still exercising the full engine paths.
func tiny() Options {
	return Options{
		NProps:      120,
		NTrain:      512,
		Pipelines:   3,
		DNNExamples: 64,
		VGGWidth:    2,
		Epochs:      2,
		Seed:        7,
	}
}

func checkTable(t *testing.T, tab *Table, minRows int) {
	t.Helper()
	if tab == nil {
		t.Fatal("nil table")
	}
	if len(tab.Rows) < minRows {
		t.Fatalf("%s: %d rows, want >= %d", tab.ID, len(tab.Rows), minRows)
	}
	for i, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("%s row %d has %d cells, header has %d", tab.ID, i, len(row), len(tab.Header))
		}
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, tab.ID) || !strings.Contains(out, tab.Header[0]) {
		t.Fatalf("%s: render missing content:\n%s", tab.ID, out)
	}
}

func TestRegistryComplete(t *testing.T) {
	ids, byID := Registry()
	if len(ids) != 12 || len(byID) != 12 {
		t.Fatalf("registry has %d/%d entries, want 12 (every table and figure)", len(ids), len(byID))
	}
	for _, id := range ids {
		if byID[id] == nil {
			t.Fatalf("no runner for %s", id)
		}
	}
}

func TestFig5a(t *testing.T) {
	tab, err := Fig5a(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 8)
	// TRAD reads should dominate re-runs for the full-scan queries.
	foundChoice := false
	for _, row := range tab.Rows {
		if row[5] == "READ" {
			foundChoice = true
		}
	}
	if !foundChoice {
		t.Fatal("cost model never chose READ for TRAD queries")
	}
}

func TestFig5bcd(t *testing.T) {
	tab, err := Fig5bcd(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 18) // 7+7+6 minus skipped SVCCA at logits
}

func TestFig6a(t *testing.T) {
	tab, err := Fig6a(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 3)
}

func TestFig6b(t *testing.T) {
	tab, err := Fig6b(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 12) // 2 models x 6 schemes
}

func TestFig7(t *testing.T) {
	tab, err := Fig7(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 3)
}

func TestFig8(t *testing.T) {
	tab, err := Fig8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 20) // 5 layers x 4 n_ex points
}

func TestFig9(t *testing.T) {
	tab, err := Fig9(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 7)
	// FULL row must be exact; high-fidelity schemes must beat 3BIT.
	var full, lp, threeBit string
	for _, row := range tab.Rows {
		switch row[0] {
		case "FULL":
			full = row[2]
		case "LP_QT":
			lp = row[2]
		case "3BIT_QT":
			threeBit = row[2]
		}
	}
	if full != "0.00000" {
		t.Fatalf("FULL mean abs err %s", full)
	}
	if lp >= threeBit {
		t.Fatalf("LP err %s not below 3BIT err %s", lp, threeBit)
	}
}

func TestTable2(t *testing.T) {
	tab, err := Table2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 3)
}

func TestTable3(t *testing.T) {
	tab, err := Table3(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 3)
}

func TestFig10(t *testing.T) {
	tab, err := Fig10(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 9) // 3 strategies x 3 query kinds
}

func TestFig11(t *testing.T) {
	tab, err := Fig11(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 3)
}

func TestFig14(t *testing.T) {
	tab, err := Fig14(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 3)
}

func TestAblateDedupGranularity(t *testing.T) {
	tab, err := AblateDedupGranularity(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 3)
}

func TestAblateGamma(t *testing.T) {
	tab, err := AblateGamma(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 4)
}

func TestAblatePool(t *testing.T) {
	tab, err := AblatePool(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 4)
}

func TestCrossModel(t *testing.T) {
	tab, err := CrossModel(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 4)
}
