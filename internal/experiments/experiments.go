// Package experiments contains one runner per table and figure of the
// paper's evaluation (Sec. 8). Each runner builds the workload it needs,
// drives the public mistique engine, and returns a printable Table whose
// rows mirror what the paper reports. cmd/mistique-bench and the root
// bench_test.go both call these runners; EXPERIMENTS.md records their
// output next to the paper's numbers.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Options scales the experiments. Zero values select defaults sized for a
// single-core machine; the paper's full scale is reached by raising them.
type Options struct {
	// NProps/NTrain size the synthetic Zillow dataset (defaults 400/2048).
	NProps, NTrain int
	// Pipelines caps how many of the 50 Zillow pipelines run (default 50).
	Pipelines int
	// DNNExamples is the number of images logged through networks
	// (default 512).
	DNNExamples int
	// VGGWidth scales VGG16 channel counts (default 4).
	VGGWidth int
	// Epochs is the number of checkpoints logged in storage experiments
	// (default 4; the paper uses 10).
	Epochs int
	// Seed drives all synthetic data.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.NProps <= 0 {
		o.NProps = 400
	}
	if o.NTrain <= 0 {
		o.NTrain = 2048
	}
	if o.Pipelines <= 0 || o.Pipelines > 50 {
		o.Pipelines = 50
	}
	if o.DNNExamples <= 0 {
		o.DNNExamples = 512
	}
	if o.VGGWidth <= 0 {
		o.VGGWidth = 4
	}
	if o.Epochs <= 0 {
		o.Epochs = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Runner executes one experiment.
type Runner func(Options) (*Table, error)

// Registry maps experiment ids to runners, in the paper's order.
func Registry() (ids []string, byID map[string]Runner) {
	byID = map[string]Runner{
		"fig5a":   Fig5a,
		"fig5bcd": Fig5bcd,
		"fig6a":   Fig6a,
		"fig6b":   Fig6b,
		"fig7":    Fig7,
		"fig8":    Fig8,
		"fig9":    Fig9,
		"table2":  Table2,
		"table3":  Table3,
		"fig10":   Fig10,
		"fig11":   Fig11,
		"fig14":   Fig14,
	}
	ids = []string{"fig5a", "fig5bcd", "fig6a", "fig6b", "fig7", "fig8", "fig9", "table2", "table3", "fig10", "fig11", "fig14"}
	return ids, byID
}

// fmtBytes renders a byte count with a binary unit.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// fmtSecs renders seconds with adaptive precision.
func fmtSecs(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.2f s", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2f ms", s*1e3)
	default:
		return fmt.Sprintf("%.0f µs", s*1e6)
	}
}

// speedup renders a/b as an NX factor.
func speedup(a, b float64) string {
	if b <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fX", a/b)
}
