package experiments

import (
	"fmt"
	"math/rand"
	"os"

	"mistique/internal/colstore"
)

// Fig14 reproduces the column-compression microbenchmark: a matrix of
// float32 columns with controlled cross-column similarity (0 = all
// independent, 0.5 = half the values shared with a base column, 1 = all
// identical), stored with similarity-based co-location vs scattered
// round-robin placement. Co-location lets the partition compressor exploit
// the redundancy; scattering destroys it.
func Fig14(o Options) (*Table, error) {
	o = o.withDefaults()
	// Scaled from the paper's 100K x 100; ratios are what matter. Rows are
	// sized so one column (4*rows bytes) fits inside gzip's 32 KiB match
	// window — the same constraint that makes the paper co-locate similar
	// ColumnChunks within a partition rather than merely on the same disk.
	rows, cols := 4096, 96

	t := &Table{
		ID:     "Fig14",
		Title:  fmt.Sprintf("Column compression microbenchmark (%dx%d float32)", rows, cols),
		Header: []string{"similarity", "co-located (LSH)", "scattered", "benefit"},
	}

	for _, sim := range []float64{0, 0.5, 1} {
		mkCols := func() [][]float32 {
			rng := rand.New(rand.NewSource(o.Seed + int64(sim*1000)))
			base := make([]float32, rows)
			for i := range base {
				base[i] = rng.Float32() * 100
			}
			out := make([][]float32, cols)
			// A fraction sim of every column is identical across columns
			// (the paper's "0.5: 50% of values are identical"). Shared
			// values arrive in contiguous runs, as they do in real
			// intermediates where pipelines copy column segments wholesale;
			// the run positions are fixed per similarity level so the
			// sharing is cross-column, not merely column-vs-base.
			const seg = 64
			shared := make([]bool, (rows+seg-1)/seg)
			for i := range shared {
				shared[i] = rng.Float64() < sim
			}
			for j := range out {
				col := make([]float32, rows)
				for si := range shared {
					start := si * seg
					end := start + seg
					if end > rows {
						end = rows
					}
					if shared[si] {
						copy(col[start:end], base[start:end])
					} else {
						for i := start; i < end; i++ {
							col[i] = rng.Float32() * 100
						}
					}
				}
				if sim == 1 {
					copy(col, base)
				}
				out[j] = col
			}
			return out
		}

		measure := func(mode colstore.Mode) (int64, error) {
			dir, err := os.MkdirTemp("", "mistique-fig14-*")
			if err != nil {
				return 0, err
			}
			defer os.RemoveAll(dir)
			st, err := colstore.Open(dir, colstore.Config{
				Mode:                mode,
				SimilarityThreshold: 0.15,
				ScatterWays:         16,
				// Disable exact dedup so similarity=1 measures compression,
				// not dedup (the paper's microbenchmark isolates the
				// compressor).
				DisableExactDedup: true,
			})
			if err != nil {
				return 0, err
			}
			for j, col := range mkCols() {
				key := colstore.ColumnKey{Model: "micro", Intermediate: "m", Column: fmt.Sprintf("c%d", j), Block: 0}
				if _, err := st.PutColumn(key, col, nil); err != nil {
					return 0, err
				}
			}
			if err := st.Flush(); err != nil {
				return 0, err
			}
			return st.DiskBytes()
		}

		together, err := measure(colstore.ModeSimilarity)
		if err != nil {
			return nil, err
		}
		scattered, err := measure(colstore.ModeScatter)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.1f", sim), fmtBytes(together), fmtBytes(scattered), speedup(float64(scattered), float64(together)))
	}
	t.Note("paper: footprint shrinks as similarity rises only when similar columns are stored together")
	return t, nil
}
