package experiments

import (
	"fmt"

	"mistique/internal/data"
	"mistique/internal/diag"
	"mistique/internal/nn"
	"mistique/internal/quant"
	"mistique/internal/tensor"
)

// rawActivations computes full-precision activations of a VGG16 layer for
// the fidelity experiments.
func rawActivations(o Options, layerPick func(net *nn.Network) int) (*tensor.T4, []int, *nn.Network, int) {
	net := nn.VGG16("vgg16", 10, o.VGGWidth, o.Seed)
	imgs, labels := data.Images(o.DNNExamples, 10, o.Seed+1)
	li := layerPick(net)
	act := net.ForwardBatched(imgs, li, 256)
	return act, labels, net, li
}

// applyScheme produces the reconstructed view of an activation tensor
// under a storage scheme (what a reader of the store observes).
func applyScheme(act *tensor.T4, scheme string) (*tensor.T4, error) {
	switch scheme {
	case "FULL":
		return act, nil
	case "LP_QT":
		out := act.Clone()
		q := quant.NewLP()
		copy(out.Data, q.Apply(act.Data))
		return out, nil
	case "8BIT_QT":
		q, err := quant.FitKBit(act.Data, 8)
		if err != nil {
			return nil, err
		}
		out := act.Clone()
		copy(out.Data, q.Apply(act.Data))
		return out, nil
	case "3BIT_QT":
		q, err := quant.FitKBit(act.Data, 3)
		if err != nil {
			return nil, err
		}
		out := act.Clone()
		copy(out.Data, q.Apply(act.Data))
		return out, nil
	case "THRESHOLD_QT":
		q, err := quant.FitThreshold(act.Data, 0.995)
		if err != nil {
			return nil, err
		}
		out := act.Clone()
		copy(out.Data, q.Apply(act.Data))
		return out, nil
	case "POOL2_QT":
		return quant.Pool(act, 2, quant.Avg), nil
	case "POOL32_QT":
		return quant.Pool(act, maxIi(act.H, act.W), quant.Avg), nil
	}
	return nil, fmt.Errorf("unknown scheme %q", scheme)
}

func maxIi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// unitMeans collapses an activation tensor to per-channel means so that
// heat-maps of pooled and unpooled schemes are comparable (one cell per
// unit/channel, as in ActiVis).
func unitMeans(act *tensor.T4, labels []int, classes int) (*tensor.Dense, error) {
	perChan := tensor.NewDense(act.N, act.C)
	plane := act.H * act.W
	for n := 0; n < act.N; n++ {
		for c := 0; c < act.C; c++ {
			var sum float32
			for _, v := range act.Plane(n, c) {
				sum += v
			}
			perChan.Set(n, c, sum/float32(plane))
		}
	}
	return diag.VIS(perChan, labels, classes)
}

// Fig9 reproduces the VIS fidelity comparison: the per-class mean
// activation heat-map of a mid conv layer under each quantization scheme,
// quantified as max/mean absolute error and rank correlation against full
// precision (the paper compares the heat-maps visually).
func Fig9(o Options) (*Table, error) {
	o = o.withDefaults()
	act, labels, _, _ := rawActivations(o, func(net *nn.Network) int {
		_, mid, _ := vggLayers(net)
		return mid
	})
	full, err := unitMeans(act, labels, 10)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "Fig9",
		Title:  "VIS heat-map fidelity under quantization (vs full precision)",
		Header: []string{"scheme", "max abs err", "mean abs err", "rank corr"},
	}
	for _, scheme := range []string{"FULL", "LP_QT", "8BIT_QT", "POOL2_QT", "POOL32_QT", "3BIT_QT", "THRESHOLD_QT"} {
		recon, err := applyScheme(act, scheme)
		if err != nil {
			return nil, err
		}
		hm, err := unitMeans(recon, labels, 10)
		if err != nil {
			return nil, err
		}
		maxAbs, meanAbs, rank, err := diag.HeatmapDistance(full, hm)
		if err != nil {
			return nil, err
		}
		t.AddRow(scheme, fmt.Sprintf("%.5f", maxAbs), fmt.Sprintf("%.5f", meanAbs), fmt.Sprintf("%.4f", rank))
	}
	t.Note("paper: LP/8BIT/POOL visually indistinguishable from full precision; 3BIT and THRESHOLD show obvious discrepancies")
	return t, nil
}

// Table2 reproduces the SVCCA fidelity comparison: the mean CCA
// coefficient between the network logits and several layer representations
// at full precision vs 8BIT_QT vs POOL_QT(2).
func Table2(o Options) (*Table, error) {
	o = o.withDefaults()
	net := nn.VGG16("vgg16", 10, o.VGGWidth, o.Seed)
	imgs, _ := data.Images(o.DNNExamples, 10, o.Seed+1)
	_, mid, last := vggLayers(net)
	// Layers roughly matching the paper's 11/13/18/21 ladder.
	conv53 := -1
	for i, n := range net.LayerNames() {
		if n == "relu5_3" {
			conv53 = i
		}
	}
	layers := []int{mid, conv53, last - 3, last - 1}
	logits := net.ForwardBatched(imgs, last, 256).Flatten()

	t := &Table{
		ID:     "Table2",
		Title:  "SVCCA mean CCA coefficient: logits vs layer representation",
		Header: []string{"layer", "full precision", "8BIT_QT", "POOL_QT(2)"},
	}
	for _, li := range layers {
		if li < 0 {
			continue
		}
		act := net.ForwardBatched(imgs, li, 256)
		row := []string{net.LayerNames()[li]}
		for _, scheme := range []string{"FULL", "8BIT_QT", "POOL2_QT"} {
			recon, err := applyScheme(act, scheme)
			if err != nil {
				return nil, err
			}
			rep := subsampleCols(recon.Flatten(), 16)
			cca, err := diag.SVCCA(rep, logits)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.4f", cca))
		}
		t.AddRow(row...)
	}
	t.Note("paper: 8BIT_QT tracks full precision closely; POOL(2)'s discrepancy shrinks with layer depth")
	return t, nil
}

// Table3 reproduces the KNN fidelity comparison: overlap between the true
// 50 nearest neighbors (full precision) and those computed on 8BIT_QT and
// POOL_QT(2) representations, at three layers.
func Table3(o Options) (*Table, error) {
	o = o.withDefaults()
	net := nn.VGG16("vgg16", 10, o.VGGWidth, o.Seed)
	imgs, _ := data.Images(o.DNNExamples, 10, o.Seed+1)
	_, mid, last := vggLayers(net)
	layers := []int{mid, (mid + last) / 2, last - 1}
	k := 50
	if k > o.DNNExamples/4 {
		k = o.DNNExamples / 4
	}
	queries := []int{0, 7, 23}

	t := &Table{
		ID:     "Table3",
		Title:  fmt.Sprintf("KNN accuracy (k=%d): overlap with full-precision neighbors", k),
		Header: []string{"layer", "full precision", "8BIT_QT", "POOL_QT(2)"},
	}
	for _, li := range layers {
		act := net.ForwardBatched(imgs, li, 256)
		fullRep := act.Flatten()
		truth := make(map[int][]int, len(queries))
		for _, q := range queries {
			truth[q] = diag.KNN(fullRep, fullRep.Row(q), k, q)
		}
		row := []string{net.LayerNames()[li]}
		for _, scheme := range []string{"FULL", "8BIT_QT", "POOL2_QT"} {
			recon, err := applyScheme(act, scheme)
			if err != nil {
				return nil, err
			}
			rep := recon.Flatten()
			var sum float64
			for _, q := range queries {
				got := diag.KNN(rep, rep.Row(q), k, q)
				sum += diag.Overlap(truth[q], got)
			}
			row = append(row, fmt.Sprintf("%.2f", sum/float64(len(queries))))
		}
		t.AddRow(row...)
	}
	t.Note("paper: 8BIT_QT ~0.94-1.0 overlap; POOL(2) ~0.74-1.0, improving with depth")
	return t, nil
}
