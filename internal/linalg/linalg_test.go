package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMat(rng *rand.Rand, r, c int) *Mat {
	m := NewMat(r, c)
	for i := range m.A {
		m.A[i] = rng.NormFloat64()
	}
	return m
}

func maxAbsDiff(a, b *Mat) float64 {
	var mx float64
	for i := range a.A {
		if d := math.Abs(a.A[i] - b.A[i]); d > mx {
			mx = d
		}
	}
	return mx
}

func TestMulAndTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	b := FromRows([][]float64{{1, 0}, {0, 1}})
	if maxAbsDiff(a.Mul(b), a) != 0 {
		t.Fatal("identity mul")
	}
	at := a.T()
	if at.R != 2 || at.C != 3 || at.At(0, 2) != 5 {
		t.Fatalf("transpose: %+v", at)
	}
}

func TestQRReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		r := 3 + rng.Intn(20)
		c := 1 + rng.Intn(r)
		m := randMat(rng, r, c)
		q, rr := m.QR()
		back := q.Mul(rr)
		if d := maxAbsDiff(back, m); d > 1e-9 {
			t.Fatalf("trial %d: QR reconstruction error %g", trial, d)
		}
		// Q columns orthonormal.
		qtq := q.T().Mul(q)
		for i := 0; i < c; i++ {
			for j := 0; j < c; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(qtq.At(i, j)-want) > 1e-9 {
					t.Fatalf("QtQ[%d,%d]=%g", i, j, qtq.At(i, j))
				}
			}
		}
		// R upper triangular.
		for i := 1; i < c; i++ {
			for j := 0; j < i; j++ {
				if rr.At(i, j) != 0 {
					t.Fatalf("R[%d,%d]=%g not zero", i, j, rr.At(i, j))
				}
			}
		}
	}
}

func TestSVDReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		r := 4 + rng.Intn(30)
		c := 1 + rng.Intn(10)
		if c > r {
			c = r
		}
		m := randMat(rng, r, c)
		u, s, v := m.SVD()
		// Rebuild U diag(s) V^T.
		us := u.Clone()
		for i := 0; i < us.R; i++ {
			for j := 0; j < us.C; j++ {
				us.Set(i, j, us.At(i, j)*s[j])
			}
		}
		back := us.Mul(v.T())
		if d := maxAbsDiff(back, m); d > 1e-8 {
			t.Fatalf("trial %d: SVD reconstruction error %g", trial, d)
		}
		// s sorted decreasing and nonnegative.
		for i := 1; i < len(s); i++ {
			if s[i] > s[i-1]+1e-12 || s[i] < 0 {
				t.Fatalf("singular values not sorted: %v", s)
			}
		}
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Second column is 2x the first: rank 1.
	m := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	_, s, _ := m.SVD()
	if s[1] > 1e-10 {
		t.Fatalf("expected zero second singular value, got %v", s)
	}
	want := math.Sqrt(1 + 4 + 9 + 4 + 16 + 36) // Frobenius norm of rank-1
	if math.Abs(s[0]-want) > 1e-10 {
		t.Fatalf("s[0]=%g want %g", s[0], want)
	}
}

func TestTruncateEnergy(t *testing.T) {
	s := []float64{10, 3, 1, 0.1}
	if k := TruncateEnergy(s, 0.99); k != 2 {
		t.Fatalf("TruncateEnergy(0.99) = %d, want 2", k)
	}
	if k := TruncateEnergy(s, 1.0); k != 4 {
		t.Fatalf("TruncateEnergy(1.0) = %d, want 4", k)
	}
	if k := TruncateEnergy(nil, 0.9); k != 0 {
		t.Fatalf("TruncateEnergy(nil) = %d", k)
	}
}

func TestCCAIdenticalSubspaces(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randMat(rng, 100, 5)
	// y is an invertible linear transform of x: all correlations must be 1.
	w := randMat(rng, 5, 5)
	for i := 0; i < 5; i++ {
		w.Set(i, i, w.At(i, i)+3) // diagonally dominant => invertible
	}
	y := x.Mul(w)
	cors := CCA(x, y)
	if len(cors) != 5 {
		t.Fatalf("got %d correlations", len(cors))
	}
	for _, c := range cors {
		if c < 0.999 {
			t.Fatalf("expected perfect correlation, got %v", cors)
		}
	}
}

func TestCCAIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randMat(rng, 2000, 3)
	y := randMat(rng, 2000, 3)
	cors := CCA(x, y)
	if m := Mean(cors); m > 0.2 {
		t.Fatalf("independent data should have low canonical correlation, mean=%g (%v)", m, cors)
	}
}

func TestCCABounds(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(50)
		x := randMat(rng, n, 1+rng.Intn(4))
		y := randMat(rng, n, 1+rng.Intn(4))
		for _, c := range CCA(x, y) {
			if c < 0 || c > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if p := Pearson(a, a); math.Abs(p-1) > 1e-12 {
		t.Fatalf("self correlation %g", p)
	}
	b := []float64{4, 3, 2, 1}
	if p := Pearson(a, b); math.Abs(p+1) > 1e-12 {
		t.Fatalf("anti correlation %g", p)
	}
	if p := Pearson(a, []float64{5, 5, 5, 5}); p != 0 {
		t.Fatalf("constant correlation %g", p)
	}
}

func BenchmarkSVD50x20(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	m := randMat(rng, 50, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SVD()
	}
}
