// Package linalg implements the dense float64 linear algebra the diagnostic
// techniques need: Householder QR, one-sided Jacobi SVD, and canonical
// correlation analysis (CCA). SVCCA (Raghu et al., used by the paper as a
// flagship MCMR diagnostic query) is SVD -> subspace projection -> CCA, and
// all three stages run on these routines.
package linalg

import (
	"fmt"
	"math"
)

// Mat is a dense row-major float64 matrix.
type Mat struct {
	R, C int
	A    []float64
}

// NewMat allocates a zeroed r x c matrix.
func NewMat(r, c int) *Mat {
	return &Mat{R: r, C: c, A: make([]float64, r*c)}
}

// FromRows builds a Mat from row slices.
func FromRows(rows [][]float64) *Mat {
	if len(rows) == 0 {
		return NewMat(0, 0)
	}
	m := NewMat(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.C {
			panic("linalg: ragged rows")
		}
		copy(m.Row(i), r)
	}
	return m
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.A[i*m.C+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.A[i*m.C+j] = v }

// Row returns row i aliasing the matrix storage.
func (m *Mat) Row(i int) []float64 { return m.A[i*m.C : (i+1)*m.C] }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.R, m.C)
	copy(c.A, m.A)
	return c
}

// Mul returns m * o.
func (m *Mat) Mul(o *Mat) *Mat {
	if m.C != o.R {
		panic(fmt.Sprintf("linalg: mul %dx%d * %dx%d", m.R, m.C, o.R, o.C))
	}
	out := NewMat(m.R, o.C)
	for i := 0; i < m.R; i++ {
		mRow := m.Row(i)
		oRow := out.Row(i)
		for k := 0; k < m.C; k++ {
			a := mRow[k]
			if a == 0 {
				continue
			}
			bRow := o.A[k*o.C : (k+1)*o.C]
			for j, b := range bRow {
				oRow[j] += a * b
			}
		}
	}
	return out
}

// T returns the transpose.
func (m *Mat) T() *Mat {
	t := NewMat(m.C, m.R)
	for i := 0; i < m.R; i++ {
		for j, v := range m.Row(i) {
			t.A[j*t.C+i] = v
		}
	}
	return t
}

// CenterColumns subtracts the column mean from every column in place and
// returns the means.
func (m *Mat) CenterColumns() []float64 {
	means := make([]float64, m.C)
	if m.R == 0 {
		return means
	}
	for i := 0; i < m.R; i++ {
		for j, v := range m.Row(i) {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= float64(m.R)
	}
	for i := 0; i < m.R; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] -= means[j]
		}
	}
	return means
}

// QR computes the thin QR decomposition of m (R' x C, R' >= C) via
// Householder reflections: m = Q * R with Q (R' x C) having orthonormal
// columns and R (C x C) upper triangular.
func (m *Mat) QR() (q, r *Mat) {
	rows, cols := m.R, m.C
	if rows < cols {
		panic("linalg: QR requires rows >= cols")
	}
	a := m.Clone()
	// vs[k] holds the k-th Householder vector (length rows-k).
	vs := make([][]float64, cols)
	for k := 0; k < cols; k++ {
		// Compute the norm of the k-th column below the diagonal.
		var norm float64
		for i := k; i < rows; i++ {
			norm += a.At(i, k) * a.At(i, k)
		}
		norm = math.Sqrt(norm)
		v := make([]float64, rows-k)
		for i := k; i < rows; i++ {
			v[i-k] = a.At(i, k)
		}
		if norm != 0 {
			if v[0] >= 0 {
				v[0] += norm
			} else {
				v[0] -= norm
			}
		}
		var vnorm float64
		for _, x := range v {
			vnorm += x * x
		}
		if vnorm > 0 {
			inv := 1 / math.Sqrt(vnorm)
			for i := range v {
				v[i] *= inv
			}
			// Apply H = I - 2 v v^T to the trailing submatrix.
			for j := k; j < cols; j++ {
				var dot float64
				for i := k; i < rows; i++ {
					dot += v[i-k] * a.At(i, j)
				}
				dot *= 2
				for i := k; i < rows; i++ {
					a.Set(i, j, a.At(i, j)-dot*v[i-k])
				}
			}
		}
		vs[k] = v
	}
	r = NewMat(cols, cols)
	for i := 0; i < cols; i++ {
		for j := i; j < cols; j++ {
			r.Set(i, j, a.At(i, j))
		}
	}
	// Form thin Q by applying the reflectors to the first cols columns of I.
	q = NewMat(rows, cols)
	for j := 0; j < cols; j++ {
		q.Set(j, j, 1)
	}
	for k := cols - 1; k >= 0; k-- {
		v := vs[k]
		for j := 0; j < cols; j++ {
			var dot float64
			for i := k; i < rows; i++ {
				dot += v[i-k] * q.At(i, j)
			}
			dot *= 2
			for i := k; i < rows; i++ {
				q.Set(i, j, q.At(i, j)-dot*v[i-k])
			}
		}
	}
	return q, r
}

// SVD computes the thin singular value decomposition m = U diag(s) V^T using
// the one-sided Jacobi method. U is R x C with orthonormal columns (for zero
// singular values the corresponding U column is zero), V is C x C, and s is
// sorted in decreasing order. Requires R >= C.
func (m *Mat) SVD() (u *Mat, s []float64, v *Mat) {
	rows, cols := m.R, m.C
	if rows < cols {
		panic("linalg: SVD requires rows >= cols (transpose first)")
	}
	a := m.Clone()
	v = NewMat(cols, cols)
	for i := 0; i < cols; i++ {
		v.Set(i, i, 1)
	}
	const tol = 1e-12
	for sweep := 0; sweep < 60; sweep++ {
		off := 0.0
		for p := 0; p < cols-1; p++ {
			for q := p + 1; q < cols; q++ {
				// Compute the 2x2 Gram entries for columns p, q.
				var app, aqq, apq float64
				for i := 0; i < rows; i++ {
					x := a.At(i, p)
					y := a.At(i, q)
					app += x * x
					aqq += y * y
					apq += x * y
				}
				if math.Abs(apq) <= tol*math.Sqrt(app*aqq) {
					continue
				}
				off += apq * apq
				// Jacobi rotation zeroing the off-diagonal Gram entry.
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				sn := c * t
				for i := 0; i < rows; i++ {
					x := a.At(i, p)
					y := a.At(i, q)
					a.Set(i, p, c*x-sn*y)
					a.Set(i, q, sn*x+c*y)
				}
				for i := 0; i < cols; i++ {
					x := v.At(i, p)
					y := v.At(i, q)
					v.Set(i, p, c*x-sn*y)
					v.Set(i, q, sn*x+c*y)
				}
			}
		}
		if off == 0 {
			break
		}
	}
	// Singular values are column norms of the rotated A; U columns are the
	// normalized columns.
	s = make([]float64, cols)
	u = NewMat(rows, cols)
	for j := 0; j < cols; j++ {
		var norm float64
		for i := 0; i < rows; i++ {
			norm += a.At(i, j) * a.At(i, j)
		}
		norm = math.Sqrt(norm)
		s[j] = norm
		if norm > 0 {
			inv := 1 / norm
			for i := 0; i < rows; i++ {
				u.Set(i, j, a.At(i, j)*inv)
			}
		}
	}
	// Sort by decreasing singular value (simple selection sort; C is small).
	for i := 0; i < cols; i++ {
		maxJ := i
		for j := i + 1; j < cols; j++ {
			if s[j] > s[maxJ] {
				maxJ = j
			}
		}
		if maxJ != i {
			s[i], s[maxJ] = s[maxJ], s[i]
			swapCols(u, i, maxJ)
			swapCols(v, i, maxJ)
		}
	}
	return u, s, v
}

func swapCols(m *Mat, a, b int) {
	for i := 0; i < m.R; i++ {
		m.A[i*m.C+a], m.A[i*m.C+b] = m.A[i*m.C+b], m.A[i*m.C+a]
	}
}

// TruncateEnergy returns the smallest k such that the first k singular
// values capture at least frac of the total squared energy.
func TruncateEnergy(s []float64, frac float64) int {
	var total float64
	for _, x := range s {
		total += x * x
	}
	if total == 0 {
		return 0
	}
	var acc float64
	for k, x := range s {
		acc += x * x
		if acc >= frac*total {
			return k + 1
		}
	}
	return len(s)
}

// CCA computes the canonical correlations between the column spaces of the
// centered matrices x (n x p) and y (n x q). It uses the QR-based method:
// correlations are the singular values of Qx^T Qy, clamped to [0, 1].
// Returns min(p, q, effective ranks) correlations in decreasing order.
func CCA(x, y *Mat) []float64 {
	if x.R != y.R {
		panic("linalg: CCA row mismatch")
	}
	xc := x.Clone()
	yc := y.Clone()
	xc.CenterColumns()
	yc.CenterColumns()
	qx, rx := xc.QR()
	qy, ry := yc.QR()
	// Drop rank-deficient directions: a tiny diagonal in R means the
	// corresponding Q column is numerical noise.
	qx = dropDeficient(qx, rx)
	qy = dropDeficient(qy, ry)
	if qx.C == 0 || qy.C == 0 {
		return nil
	}
	prod := qx.T().Mul(qy)
	if prod.R < prod.C {
		prod = prod.T()
	}
	_, s, _ := prod.SVD()
	k := min(qx.C, qy.C)
	if k > len(s) {
		k = len(s)
	}
	out := make([]float64, k)
	for i := 0; i < k; i++ {
		c := s[i]
		if c > 1 {
			c = 1
		}
		if c < 0 {
			c = 0
		}
		out[i] = c
	}
	return out
}

func dropDeficient(q, r *Mat) *Mat {
	var maxDiag float64
	for i := 0; i < r.C; i++ {
		if d := math.Abs(r.At(i, i)); d > maxDiag {
			maxDiag = d
		}
	}
	keep := make([]int, 0, q.C)
	for i := 0; i < r.C; i++ {
		if math.Abs(r.At(i, i)) > 1e-10*maxDiag && maxDiag > 0 {
			keep = append(keep, i)
		}
	}
	if len(keep) == q.C {
		return q
	}
	out := NewMat(q.R, len(keep))
	for i := 0; i < q.R; i++ {
		for k, j := range keep {
			out.Set(i, k, q.At(i, j))
		}
	}
	return out
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Pearson returns the Pearson correlation coefficient between a and b.
func Pearson(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		panic("linalg: Pearson length mismatch")
	}
	ma, mb := Mean(a), Mean(b)
	var cov, va, vb float64
	for i := range a {
		da := a[i] - ma
		db := b[i] - mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}
