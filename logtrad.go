package mistique

import (
	"fmt"
	"time"

	"mistique/internal/frame"
	"mistique/internal/metadata"
	"mistique/internal/pipeline"
	"mistique/internal/quant"
)

// LogPipeline runs a TRAD pipeline against env, registers it with the
// MetadataDB (including per-stage timings for the cost model) and logs
// every intermediate it produces into the DataStore. With adaptive
// materialization enabled (Config.Gamma > 0) intermediates are only
// cataloged, not stored; they materialize later once their gamma exceeds
// the threshold (Sec. 4.3 / Alg. 4).
//
// The pipeline object is retained so the ChunkReader can re-run its stored
// transformers to answer queries (the RERUN strategy).
func (s *System) LogPipeline(p *pipeline.Pipeline, env map[string]*frame.Frame) (*LogReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	name := p.Name
	if _, dup := s.pipelines[name]; dup {
		return nil, fmt.Errorf("mistique: pipeline %q already logged", name)
	}
	// Re-attach: the catalog knows this model from a previous process (the
	// directory was reopened) but its transformer state is gone. Refresh
	// the catalog entry; identical chunks re-presented to the store dedup
	// against the flushed data, so the re-log is cheap and idempotent.
	s.meta.DeleteModel(name)
	if err := p.Bind(env, 0); err != nil {
		return nil, err
	}

	before := s.store.Stats()
	start := time.Now()
	res, err := p.Run()
	if err != nil {
		return nil, fmt.Errorf("mistique: run %s: %w", name, err)
	}
	// The RERUN strategy executes stored transformers without refitting, so
	// the cost model must be calibrated on transform-only timings: measure a
	// second, fitted pass. (Its outputs are identical; we keep the first
	// run's frames.)
	timed, err := p.Run()
	if err != nil {
		return nil, fmt.Errorf("mistique: calibrate %s: %w", name, err)
	}

	pm := &pipelineModel{
		p:       p,
		env:     env,
		stageOf: make(map[string]int),
		colsOf:  make(map[string][]string),
	}
	model := &metadata.Model{Name: name, Kind: metadata.TRAD}
	report := &LogReport{Model: name}

	for si, sr := range res.Stages {
		model.Stages = append(model.Stages, metadata.Stage{
			Name:        sr.Name,
			Index:       si,
			ExecSeconds: timed.Stages[si].Seconds,
		})
		for _, out := range sr.Outputs {
			m, cols := out.Frame.FloatMatrix()
			pm.stageOf[out.Name] = si
			pm.colsOf[out.Name] = cols
			if m.Rows > model.TotalExamples {
				model.TotalExamples = m.Rows
			}
			bytesPerRow := int64(4 * len(cols))
			it := &metadata.Interm{
				Name:       out.Name,
				StageIndex: si,
				Columns:    cols,
				Rows:       m.Rows,
				Blocks:     (m.Rows + s.cfg.RowBlockRows - 1) / s.cfg.RowBlockRows,
			}
			model.Intermediates = append(model.Intermediates, it)
			model.Stages[si].OutputColumns = len(cols)
			model.Stages[si].OutputBytesPerRow = bytesPerRow
			report.Intermediates++
			if s.adaptiveOn() || len(cols) == 0 || m.Rows == 0 {
				report.Skipped++
				continue
			}
			stored, err := s.storeMatrix(name, out.Name, m, cols, nil)
			if err != nil {
				return nil, err
			}
			it.Materialized = true
			it.QuantScheme = string(SchemeFull)
			it.StoredBytes = stored
		}
	}
	report.Seconds = time.Since(start).Seconds()
	if err := s.meta.RegisterModel(model); err != nil {
		return nil, err
	}
	s.pipelines[name] = pm

	after := s.store.Stats()
	report.ColumnsStored = after.ChunksStored - before.ChunksStored
	report.ColumnsDedup = after.ChunksDeduped - before.ChunksDeduped
	report.StoredBytes = after.StoredBytes - before.StoredBytes
	report.LogicalBytes = after.LogicalBytes - before.LogicalBytes
	return report, nil
}

// materializeTRAD stores one pipeline intermediate on demand (the adaptive
// path). It re-runs the stored transformers to obtain the frame.
func (s *System) materializeTRAD(pm *pipelineModel, model, interm string) (int64, error) {
	si, ok := pm.stageOf[interm]
	if !ok {
		return 0, fmt.Errorf("mistique: unknown intermediate %s.%s", model, interm)
	}
	res, err := pm.p.RunTo(si)
	if err != nil {
		return 0, err
	}
	f := res.Intermediate(interm)
	if f == nil {
		return 0, fmt.Errorf("mistique: re-run did not produce %s.%s", model, interm)
	}
	m, cols := f.FloatMatrix()
	stored, err := s.storeMatrix(model, interm, m, cols, func([]float32) (*quant.Quantizer, error) { return nil, nil })
	if err != nil {
		return 0, err
	}
	if err := s.meta.SetMaterialized(model, interm, stored, string(SchemeFull)); err != nil {
		return 0, err
	}
	return stored, nil
}
