package mistique

import (
	"fmt"
	"time"

	"mistique/internal/frame"
	"mistique/internal/metadata"
	"mistique/internal/pipeline"
	"mistique/internal/quant"
)

// LogPipeline runs a TRAD pipeline against env, registers it with the
// MetadataDB (including per-stage timings for the cost model) and logs
// every intermediate it produces into the DataStore. With adaptive
// materialization enabled (Config.Gamma > 0) intermediates are only
// cataloged, not stored; they materialize later once their gamma exceeds
// the threshold (Sec. 4.3 / Alg. 4).
//
// The pipeline object is retained so the ChunkReader can re-run its stored
// transformers to answer queries (the RERUN strategy).
//
// Execution overlaps storage: the calibration re-run (which times the
// fitted transformers for the cost model) executes on its own goroutine
// while the first run's frames are chunked, encoded and stored — the two
// touch disjoint data (pipeline ops clone their inputs, and the first
// run's frames are immutable once produced).
func (s *System) LogPipeline(p *pipeline.Pipeline, env map[string]*frame.Frame) (*LogReport, error) {
	name := p.Name
	if err := s.beginLogging(name, "pipeline"); err != nil {
		return nil, err
	}
	var done *pipelineModel
	defer func() { s.endLogging(name, done, nil) }()
	// Re-attach: the catalog knows this model from a previous process (the
	// directory was reopened) but its transformer state is gone. Refresh
	// the catalog entry; identical chunks re-presented to the store dedup
	// against the flushed data, so the re-log is cheap and idempotent.
	s.meta.DeleteModel(name)
	if err := p.Bind(env, 0); err != nil {
		return nil, err
	}

	before := s.store.Stats()
	start := time.Now()
	res, err := p.Run()
	if err != nil {
		return nil, fmt.Errorf("mistique: run %s: %w", name, err)
	}
	// The RERUN strategy executes stored transformers without refitting, so
	// the cost model must be calibrated on transform-only timings: measure a
	// second, fitted pass. (Its outputs are identical; we keep the first
	// run's frames.) It runs concurrently with storage below and is joined
	// before stage timings are recorded.
	type timedRun struct {
		res *pipeline.RunResult
		err error
	}
	timedCh := make(chan timedRun, 1)
	go func() {
		r, err := p.Run()
		timedCh <- timedRun{res: r, err: err}
	}()

	pm := &pipelineModel{
		p:       p,
		env:     env,
		stageOf: make(map[string]int),
		colsOf:  make(map[string][]string),
	}
	model := &metadata.Model{Name: name, Kind: metadata.TRAD}
	report := &LogReport{Model: name}

	// Store each intermediate in turn; storeMatrix fans its columns out
	// across the worker pool, so the column axis (the wide one) is already
	// parallel and stacking another fan-out here would only oversubscribe.
	var storeErr error
	for si, sr := range res.Stages {
		model.Stages = append(model.Stages, metadata.Stage{
			Name:  sr.Name,
			Index: si,
		})
		for _, out := range sr.Outputs {
			m, cols := out.Frame.FloatMatrix()
			pm.stageOf[out.Name] = si
			pm.colsOf[out.Name] = cols
			if m.Rows > model.TotalExamples {
				model.TotalExamples = m.Rows
			}
			bytesPerRow := int64(4 * len(cols))
			it := &metadata.Interm{
				Name:       out.Name,
				StageIndex: si,
				Columns:    cols,
				Rows:       m.Rows,
				Blocks:     (m.Rows + s.cfg.RowBlockRows - 1) / s.cfg.RowBlockRows,
			}
			model.Intermediates = append(model.Intermediates, it)
			model.Stages[si].OutputColumns = len(cols)
			model.Stages[si].OutputBytesPerRow = bytesPerRow
			report.Intermediates++
			if s.adaptiveOn() || len(cols) == 0 || m.Rows == 0 {
				report.Skipped++
				continue
			}
			stored, err := s.storeMatrix(name, out.Name, m, cols, nil)
			if err != nil {
				storeErr = err
				break
			}
			it.Materialized = true
			it.QuantScheme = string(SchemeFull)
			it.StoredBytes = stored
		}
		if storeErr != nil {
			break
		}
	}

	timed := <-timedCh
	if storeErr != nil {
		return nil, storeErr
	}
	if timed.err != nil {
		return nil, fmt.Errorf("mistique: calibrate %s: %w", name, timed.err)
	}
	for si := range model.Stages {
		model.Stages[si].ExecSeconds = timed.res.Stages[si].Seconds
	}
	report.Seconds = time.Since(start).Seconds()
	if err := s.meta.RegisterModel(model); err != nil {
		return nil, err
	}
	done = pm // install in s.pipelines via the deferred endLogging
	s.metrics.modelsLogged.Inc()
	s.metrics.ingestSeconds.Observe(report.Seconds)

	after := s.store.Stats()
	report.ColumnsStored = after.ChunksStored - before.ChunksStored
	report.ColumnsDedup = after.ChunksDeduped - before.ChunksDeduped
	report.StoredBytes = after.StoredBytes - before.StoredBytes
	report.LogicalBytes = after.LogicalBytes - before.LogicalBytes
	return report, nil
}

// materializeTRAD stores one pipeline intermediate on demand (the adaptive
// path). It re-runs the stored transformers to obtain the frame; the
// re-run holds the model's execution lock (transformers keep per-run
// state), storage does not.
func (s *System) materializeTRAD(pm *pipelineModel, model, interm string) (int64, error) {
	si, ok := pm.stageOf[interm]
	if !ok {
		return 0, fmt.Errorf("mistique: unknown intermediate %s.%s", model, interm)
	}
	pm.exec.Lock()
	res, err := pm.p.RunTo(si)
	pm.exec.Unlock()
	if err != nil {
		return 0, err
	}
	f := res.Intermediate(interm)
	if f == nil {
		return 0, fmt.Errorf("mistique: re-run did not produce %s.%s", model, interm)
	}
	m, cols := f.FloatMatrix()
	stored, err := s.storeMatrix(model, interm, m, cols, func([]float32) (*quant.Quantizer, error) { return nil, nil })
	if err != nil {
		return 0, err
	}
	if err := s.meta.SetMaterialized(model, interm, stored, string(SchemeFull)); err != nil {
		return 0, err
	}
	return stored, nil
}
