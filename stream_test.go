package mistique

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"mistique/internal/colstore"
	"mistique/internal/cost"
	"mistique/internal/faultfs"
	"mistique/internal/metadata"
	"mistique/internal/sample"
)

// streamVal is the deterministic cell value used throughout the streaming
// tests: a pure function of (row, col) so exact reads can be verified
// without keeping the ingested batches around.
func streamVal(row int64, col int) float32 {
	return float32(row%977) + float32(col)*0.25
}

// ingestStream pushes rows [start, start+n) of streamVal data in batches.
func ingestStream(t *testing.T, s *System, model, interm string, cols []string, start, n int64, batch int) *IngestResult {
	t.Helper()
	var last *IngestResult
	for off := int64(0); off < n; {
		b := int64(batch)
		if off+b > n {
			b = n - off
		}
		rows := make([][]float32, b)
		for i := range rows {
			row := make([]float32, len(cols))
			for j := range cols {
				row[j] = streamVal(start+off+int64(i), j)
			}
			rows[i] = row
		}
		res, err := s.IngestRows(model, interm, cols, rows)
		if err != nil {
			t.Fatal(err)
		}
		last = res
		off += b
	}
	return last
}

// checkStreamRead reads the stream exactly and verifies every cell.
func checkStreamRead(t *testing.T, s *System, model, interm string, cols []string, wantRows int64) {
	t.Helper()
	res, err := s.GetIntermediate(model, interm, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != cost.Read {
		t.Fatalf("stream read strategy = %v, want READ", res.Strategy)
	}
	if int64(res.Data.Rows) != wantRows {
		t.Fatalf("read %d rows, want %d", res.Data.Rows, wantRows)
	}
	if len(res.Cols) != len(cols) {
		t.Fatalf("read cols %v, want %v", res.Cols, cols)
	}
	for i := 0; i < res.Data.Rows; i++ {
		for j := range cols {
			if got, want := res.Data.At(i, j), streamVal(int64(i), j); got != want {
				t.Fatalf("row %d col %d = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestStreamIngestAndExactRead(t *testing.T) {
	s := openSys(t, Config{RowBlockRows: 64})
	cols := []string{"a", "b", "c"}

	res := ingestStream(t, s, "live", "acts", cols, 0, 300, 7)
	if res.Rows != 300 {
		t.Fatalf("acked rows = %d, want 300", res.Rows)
	}
	// 4 full 64-row blocks cut at ingest; 44 rows still pending.
	if res.FlushedRows != 256 {
		t.Fatalf("flushed rows = %d, want 256", res.FlushedRows)
	}
	if res.WALBytes <= 0 {
		t.Fatalf("wal bytes = %d", res.WALBytes)
	}

	m := s.Metadata().Model("live")
	if m == nil || m.Kind != metadata.Stream {
		t.Fatalf("model = %+v, want stream kind", m)
	}
	it := s.Metadata().Intermediate("live", "acts")
	if it == nil || it.StageIndex != -1 || it.Rows != 256 {
		t.Fatalf("intermediate = %+v", it)
	}

	// Exact queries see the cut blocks before any Flush.
	checkStreamRead(t, s, "live", "acts", cols, 256)

	// Flush drains the open tail; everything acked becomes readable.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	checkStreamRead(t, s, "live", "acts", cols, 300)

	// The stream keeps accepting rows after a flush (the drained tail is
	// re-put when its block refills).
	ingestStream(t, s, "live", "acts", cols, 300, 100, 13)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	checkStreamRead(t, s, "live", "acts", cols, 400)

	// Streams have no stages to re-run: a forced RERUN must refuse.
	if _, err := s.Fetch("live", "acts", nil, 0, cost.Rerun); err == nil {
		t.Fatal("forced RERUN on a stream succeeded")
	}

	snap := s.Metrics()
	if snap.Counters["mistique_stream_rows_total"] != 400 {
		t.Fatalf("stream rows counter = %v", snap.Counters["mistique_stream_rows_total"])
	}
	if snap.Counters["mistique_wal_rewrites_total"] < 2 {
		t.Fatalf("wal rewrites counter = %v", snap.Counters["mistique_wal_rewrites_total"])
	}
	if snap.Gauges["mistique_streams"] != 1 {
		t.Fatalf("streams gauge = %v", snap.Gauges["mistique_streams"])
	}
}

func TestStreamReplayOnReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{RowBlockRows: 64, Sample: sample.Config{Cap: 128}}
	s1, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cols := []string{"x", "y"}
	ingestStream(t, s1, "live", "acts", cols, 0, 300, 7)
	// No Flush: the cut blocks live only in s1's dirty partitions and the
	// catalog only in memory. Abandoning s1 here models a crash after the
	// last acknowledged batch — the WAL alone must reconstruct the stream.

	s2, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := s2.Metrics()
	if snap.Counters["mistique_wal_replays_total"] != 1 {
		t.Fatalf("wal replays = %v", snap.Counters["mistique_wal_replays_total"])
	}
	if got := snap.Counters["mistique_wal_replayed_records_total"]; got != int64((300+6)/7) {
		t.Fatalf("replayed records = %v, want %d", got, (300+6)/7)
	}

	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	checkStreamRead(t, s2, "live", "acts", cols, 300)

	// The sampler replayed every acked row exactly once.
	d, err := s2.ColDist("live", "acts", "x", 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows != 300 || d.Strategy != cost.Sample {
		t.Fatalf("replayed sample: rows %d strategy %v", d.Rows, d.Strategy)
	}

	// The stream continues where it left off.
	ingestStream(t, s2, "live", "acts", cols, 300, 50, 9)
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	checkStreamRead(t, s2, "live", "acts", cols, 350)
}

// TestStreamCrashMidAppendKeepsAckedRows is the acceptance crash test: a
// torn WAL append must fail the in-flight batch without acknowledging it,
// and every previously acknowledged batch must survive the reboot.
func TestStreamCrashMidAppendKeepsAckedRows(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjector(nil)
	cfg := Config{RowBlockRows: 64, Store: colstore.Config{FS: inj}}
	s1, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cols := []string{"v"}
	ingestStream(t, s1, "live", "acts", cols, 0, 100, 10)

	// Tear the next WAL append after 8 bytes and play dead.
	inj.Arm(faultfs.Fault{Op: faultfs.OpWrite, PathContains: ".wal", AfterBytes: 8, Crash: true})
	if _, err := s1.IngestRows("live", "acts", cols, [][]float32{{1}}); err == nil {
		t.Fatal("ingest during crash was acknowledged")
	}

	// Reboot on a healthy filesystem.
	s2, err := Open(dir, Config{RowBlockRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	snap := s2.Metrics()
	if snap.Counters["mistique_wal_truncated_tails_total"] < 1 {
		t.Fatalf("truncated tails = %v, want >= 1", snap.Counters["mistique_wal_truncated_tails_total"])
	}
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	// Exactly the 100 acked rows — the torn batch is gone, nothing else.
	checkStreamRead(t, s2, "live", "acts", cols, 100)
}

func TestStreamColumnAndKindConflicts(t *testing.T) {
	s := openSys(t, Config{RowBlockRows: 64})
	if _, err := s.IngestRows("live", "acts", []string{"a", "b"}, [][]float32{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.IngestRows("live", "acts", []string{"a", "c"}, [][]float32{{1, 2}}); err == nil {
		t.Fatal("column mismatch accepted")
	}
	if _, err := s.IngestRows("live", "acts", []string{"a"}, [][]float32{{1}}); err == nil {
		t.Fatal("column count mismatch accepted")
	}
	if _, err := s.IngestRows("live", "acts", []string{"a", "b"}, [][]float32{{1}}); err == nil {
		t.Fatal("short row accepted")
	}
	if _, err := s.IngestRows("live", "acts", []string{"a", "b"}, nil); err == nil {
		t.Fatal("empty batch accepted")
	}

	// A logged pipeline model cannot double as a stream.
	logDemo(t, s)
	if _, err := s.IngestRows("demo", "acts", []string{"a"}, [][]float32{{1}}); err == nil {
		t.Fatal("ingest into a pipeline model accepted")
	}
}

// TestStreamConcurrentStress is the -race acceptance scenario: several
// streaming writers, approximate and exact readers, and a flush/compact
// loop all share one System. Nothing may be lost and no bound may lie.
func TestStreamConcurrentStress(t *testing.T) {
	const (
		nStreams = 4
		rowsPer  = 1500
		batch    = 21
	)
	s := openSys(t, Config{RowBlockRows: 128, Sample: sample.Config{Cap: 256}})
	cols := []string{"v", "w"}

	// prefixMean[n] is the exact mean of streamVal(row, 0) over rows [0,n).
	prefixMean := make([]float64, rowsPer+1)
	var sum float64
	for n := 1; n <= rowsPer; n++ {
		sum += float64(streamVal(int64(n-1), 0))
		prefixMean[n] = sum / float64(n)
	}

	var wg sync.WaitGroup
	var writersLive atomic.Int64
	writersLive.Store(nStreams)
	for w := 0; w < nStreams; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer writersLive.Add(-1)
			interm := fmt.Sprintf("s%d", w)
			for off := int64(0); off < rowsPer; {
				b := int64(batch)
				if off+b > rowsPer {
					b = rowsPer - off
				}
				rows := make([][]float32, b)
				for i := range rows {
					row := int64(off) + int64(i)
					rows[i] = []float32{streamVal(row, 0), streamVal(row, 1)}
				}
				if _, err := s.IngestRows("live", interm, cols, rows); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				off += b
			}
		}(w)
	}

	// Approximate readers: every answered estimate must honor its bound
	// against the exact prefix mean of however many rows it saw.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; writersLive.Load() > 0; i++ {
				interm := fmt.Sprintf("s%d", (r+i)%nStreams)
				d, err := s.ColDist("live", interm, "v", 0)
				if err != nil {
					t.Errorf("approx reader: %v", err)
					return
				}
				if d.Strategy != cost.Sample {
					continue
				}
				if d.Rows < 1 || d.Rows > rowsPer {
					t.Errorf("approx reader: rows %d out of range", d.Rows)
					return
				}
				exact := prefixMean[d.Rows]
				if diff := d.Mean - exact; diff > d.MeanBound+1e-6 || -diff > d.MeanBound+1e-6 {
					t.Errorf("bound violated: n=%d mean=%v exact=%v bound=%v", d.Rows, d.Mean, exact, d.MeanBound)
					return
				}
			}
		}(r)
	}

	// Exact readers: whatever row count the catalog admits must read back
	// bit-exact.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; writersLive.Load() > 0; i++ {
				interm := fmt.Sprintf("s%d", (r+2*i)%nStreams)
				res, err := s.GetIntermediate("live", interm, []string{"v"}, 0)
				if err != nil {
					// Not materialized (no block cut yet) or not created
					// yet: keep polling.
					if errors.Is(err, ErrNotMaterialized) || errors.Is(err, ErrUnknownIntermediate) || errors.Is(err, ErrUnknownModel) {
						continue
					}
					t.Errorf("exact reader: %v", err)
					return
				}
				for i := 0; i < res.Data.Rows; i++ {
					if got, want := res.Data.At(i, 0), streamVal(int64(i), 0); got != want {
						t.Errorf("exact reader: row %d = %v, want %v", i, got, want)
						return
					}
				}
			}
		}(r)
	}

	// Flush/compact churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for writersLive.Load() > 0 {
			if err := s.Flush(); err != nil {
				t.Errorf("flush: %v", err)
				return
			}
			if _, err := s.CompactStore(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()

	wg.Wait()
	if t.Failed() {
		return
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < nStreams; w++ {
		checkStreamRead(t, s, "live", fmt.Sprintf("s%d", w), cols, rowsPer)
	}
	if got := s.Metrics().Counters["mistique_stream_rows_total"]; got != nStreams*rowsPer {
		t.Fatalf("acked rows counter = %v, want %d", got, nStreams*rowsPer)
	}
}

// TestStreamDropModel removes the WAL, the sample, and the stream state.
func TestStreamDropModel(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{RowBlockRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	cols := []string{"v"}
	ingestStream(t, s, "live", "acts", cols, 0, 200, 11)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.DropModel("live"); err != nil {
		t.Fatal(err)
	}
	if m := s.Metadata().Model("live"); m != nil {
		t.Fatalf("model survived drop: %+v", m)
	}
	ents, err := os.ReadDir(filepath.Join(dir, "data", "wal"))
	if err == nil {
		for _, e := range ents {
			if strings.HasSuffix(e.Name(), ".wal") {
				t.Fatalf("wal file survived drop: %s", e.Name())
			}
		}
	}
	// The name is free for a fresh stream afterwards.
	ingestStream(t, s, "live", "acts", cols, 0, 64, 16)
	checkStreamRead(t, s, "live", "acts", cols, 64)
}
