package mistique

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"mistique/internal/colstore"
	"mistique/internal/cost"
	"mistique/internal/metadata"
	"mistique/internal/parallel"
	"mistique/internal/quant"
	"mistique/internal/tensor"
)

// Typed query errors. Every query entry point wraps these with %w so
// callers serving the engine over a protocol boundary (internal/server
// maps them to HTTP 404/409) can classify failures with errors.Is instead
// of string matching.
var (
	// ErrUnknownModel marks a query against a model absent from the catalog.
	ErrUnknownModel = errors.New("unknown model")
	// ErrUnknownIntermediate marks a query against an intermediate the
	// model did not produce.
	ErrUnknownIntermediate = errors.New("unknown intermediate")
	// ErrNotMaterialized marks an operation that needs stored chunks
	// (forced READ, zone-map scans, row-range reads) against an
	// intermediate that has none.
	ErrNotMaterialized = errors.New("not materialized")
)

// Result is the answer to an intermediate query.
type Result struct {
	Model        string
	Intermediate string
	Cols         []string
	// Data is an nEx x len(Cols) matrix of (possibly reconstructed)
	// values, in catalog column order.
	Data *tensor.Dense
	// Strategy says whether the engine read the stored intermediate or
	// re-ran the model, per the cost model.
	Strategy cost.Strategy
	// EstReadSecs / EstRerunSecs are the cost-model estimates for the two
	// strategies. Both are always populated — even when only one strategy
	// was available (an unmaterialized intermediate forces RERUN) or the
	// caller forced one via Fetch — so callers can always inspect the
	// trade-off the cost model saw.
	EstReadSecs, EstRerunSecs float64
	// FetchSeconds is the measured wall time of the fetch.
	FetchSeconds float64
	// MaterializedNow is true if this query triggered adaptive
	// materialization of the intermediate.
	MaterializedNow bool
	// Recovered is true when the chosen READ hit missing or quarantined
	// chunks and the engine transparently fell back to re-running the
	// model ("the model is the backup"), re-materializing on the way.
	Recovered bool
}

// recoverableReadErr reports whether a read failure can be healed by
// re-running the model: the chunks are unavailable (quarantined or lost
// to a crash) or the store lost the column mappings entirely (e.g. a
// corrupt manifest forced an empty restart while the catalog still says
// materialized).
func recoverableReadErr(err error) bool {
	return errors.Is(err, colstore.ErrUnavailable) || errors.Is(err, colstore.ErrNotStored)
}

// GetIntermediate fetches columns of an intermediate for the first nEx
// examples. cols == nil fetches every column; nEx <= 0 fetches all rows.
// The engine consults the query cost model (Sec. 5.1): if the intermediate
// is materialized and reading is estimated cheaper than re-running, it
// reads; otherwise it re-runs the stored model. Each query also updates
// n_query(i), and under adaptive materialization (Config.Gamma > 0) a
// re-run result whose gamma has crossed the threshold is stored on the
// spot, so later queries read.
//
// Queries run without any engine-wide lock: reads fan chunk fetches out
// across the worker pool, and re-runs serialize only on the model's own
// execution mutex, so queries against different models proceed in
// parallel.
func (s *System) GetIntermediate(model, interm string, cols []string, nEx int) (*Result, error) {
	return s.GetIntermediateCtx(context.Background(), model, interm, cols, nEx)
}

// GetIntermediateCtx is GetIntermediate under a context: the deadline or
// cancellation is honored before any work starts, before queueing on a
// model's execution mutex, and between chunk-read tasks. Adaptive
// materialization triggered by the query is deliberately *not* bound to
// ctx — once the threshold is crossed, persistence proceeds even if the
// requesting client has gone away, so a slow client cannot leave the
// store half-materialized.
func (s *System) GetIntermediateCtx(ctx context.Context, model, interm string, cols []string, nEx int) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m := s.meta.Model(model)
	if m == nil {
		return nil, fmt.Errorf("mistique: %w %q", ErrUnknownModel, model)
	}
	it, ok := s.meta.IntermSnapshot(model, interm)
	if !ok {
		return nil, fmt.Errorf("mistique: %w %s.%s", ErrUnknownIntermediate, model, interm)
	}
	nQuery, err := s.meta.RecordQuery(model, interm)
	if err != nil {
		return nil, err
	}
	if nEx <= 0 || nEx > it.Rows {
		nEx = it.Rows
	}
	if len(cols) == 0 {
		cols = it.Columns
	}

	res := &Result{Model: model, Intermediate: interm, Cols: cols}

	// Cost the two strategies against a stable snapshot of the constants.
	// READ is charged its delta-chain amplification: reconstructing a chunk
	// stored as a generation-d residual pages in d+1 generations cold, so a
	// deep chain tips the choice back to RERUN exactly when it should.
	costP := s.CostParams()
	bytesPerRow := s.bytesPerRow(m, &it)
	res.EstReadSecs = cost.ChainReadSeconds(bytesPerRow, nEx, s.store.MaxDeltaDepth(model, interm), costP)
	if m.Kind == metadata.Stream {
		// Stream models have no stages: RERUN is unavailable and READ is
		// the only exact strategy (the approximate path — ColDist,
		// ApproxTopK, ConfusionMatrix — answers from the sampler instead).
		if !it.Materialized {
			return nil, fmt.Errorf("mistique: stream %s.%s %w; no rows flushed yet", model, interm, ErrNotMaterialized)
		}
		res.Strategy = cost.Read
	} else {
		res.EstRerunSecs, err = cost.RerunSeconds(m, it.StageIndex, nEx, costP)
		if err != nil {
			return nil, err
		}
		res.Strategy = cost.Rerun
		if it.Materialized && cost.Choose(res.EstRerunSecs, res.EstReadSecs) == cost.Read {
			res.Strategy = cost.Read
		}
	}

	start := time.Now()
	switch res.Strategy {
	case cost.Read:
		res.Data, err = s.readMatrix(ctx, model, interm, &it, cols, nEx)
		if err != nil && recoverableReadErr(err) {
			res.Data, err = s.recoverRead(ctx, m, &it, cols, nEx, err)
			if err == nil {
				res.Strategy = cost.Rerun
				res.Recovered = true
			}
		}
	default:
		res.Data, err = s.rerunMatrix(ctx, m, &it, cols, nEx)
	}
	if err != nil {
		return nil, err
	}
	res.FetchSeconds = time.Since(start).Seconds()
	s.metrics.queries.Inc()
	s.metrics.observeQuery(res)

	// Adaptive materialization (Alg. 4): storage is worth it once the
	// cumulative saved query time per byte crosses gamma. Two queries
	// racing past the threshold both materialize; the store accepts the
	// identical re-puts as dedup hits, so the race is benign.
	if s.adaptiveOn() && !it.Materialized {
		estBytes := bytesPerRow * int64(it.Rows)
		fullRerun, rerr := cost.RerunSeconds(m, it.StageIndex, it.Rows, costP)
		fullRead := cost.ReadSeconds(bytesPerRow, it.Rows, costP)
		if rerr == nil && cost.Gamma(fullRerun, fullRead, nQuery, estBytes) >= s.cfg.Gamma {
			if err := s.materialize(m, &it); err != nil {
				// A concurrent DropModel may have removed the catalog entry
				// mid-materialization; scrub the stray column mappings so
				// their chunks stay reclaimable.
				if s.meta.Model(model) == nil {
					s.store.DeleteModel(model)
				}
				return nil, fmt.Errorf("mistique: adaptive materialization of %s.%s: %w", model, interm, err)
			}
			res.MaterializedNow = true
			s.metrics.materializations.Inc()
		}
	}
	s.noteSlowQuery(slowQueryRecord{
		Op:           "get_intermediate",
		Model:        model,
		Intermediate: interm,
		Strategy:     res.Strategy.String(),
		Cols:         len(cols),
		NEx:          nEx,
		EstReadSecs:  res.EstReadSecs,
		EstRerunSecs: res.EstRerunSecs,
		Seconds:      res.FetchSeconds,
		Recovered:    res.Recovered,
		Materialized: res.MaterializedNow,
	})
	return res, nil
}

// Fetch retrieves an intermediate with a caller-forced strategy, bypassing
// the cost model's choice (the evaluation harness uses this to measure both
// sides of every read-vs-re-run trade-off). Forcing Read on an
// unmaterialized intermediate is an error. Query counters still update.
func (s *System) Fetch(model, interm string, cols []string, nEx int, strategy cost.Strategy) (*Result, error) {
	return s.FetchCtx(context.Background(), model, interm, cols, nEx, strategy)
}

// FetchCtx is Fetch under a context; see GetIntermediateCtx for the
// cancellation points.
func (s *System) FetchCtx(ctx context.Context, model, interm string, cols []string, nEx int, strategy cost.Strategy) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m := s.meta.Model(model)
	if m == nil {
		return nil, fmt.Errorf("mistique: %w %q", ErrUnknownModel, model)
	}
	it, ok := s.meta.IntermSnapshot(model, interm)
	if !ok {
		return nil, fmt.Errorf("mistique: %w %s.%s", ErrUnknownIntermediate, model, interm)
	}
	if _, err := s.meta.RecordQuery(model, interm); err != nil {
		return nil, err
	}
	if nEx <= 0 || nEx > it.Rows {
		nEx = it.Rows
	}
	if len(cols) == 0 {
		cols = it.Columns
	}
	if strategy == cost.Read && !it.Materialized {
		return nil, fmt.Errorf("mistique: %s.%s is %w; cannot force READ", model, interm, ErrNotMaterialized)
	}
	res := &Result{Model: model, Intermediate: interm, Cols: cols, Strategy: strategy}
	// Populate both estimates even though the caller forced the strategy,
	// so Result carries the trade-off the cost model would have seen (and
	// the evaluation harness can compare forced measurements against it).
	costP := s.CostParams()
	res.EstReadSecs = cost.ChainReadSeconds(s.bytesPerRow(m, &it), nEx, s.store.MaxDeltaDepth(model, interm), costP)
	if est, eerr := cost.RerunSeconds(m, it.StageIndex, nEx, costP); eerr == nil {
		res.EstRerunSecs = est
	}
	start := time.Now()
	var err error
	if strategy == cost.Read {
		res.Data, err = s.readMatrix(ctx, model, interm, &it, cols, nEx)
	} else {
		res.Data, err = s.rerunMatrix(ctx, m, &it, cols, nEx)
	}
	if err != nil {
		return nil, err
	}
	res.FetchSeconds = time.Since(start).Seconds()
	s.metrics.queries.Inc()
	s.metrics.observeQuery(res)
	s.noteSlowQuery(slowQueryRecord{
		Op:           "fetch",
		Model:        model,
		Intermediate: interm,
		Strategy:     res.Strategy.String(),
		Cols:         len(cols),
		NEx:          nEx,
		EstReadSecs:  res.EstReadSecs,
		EstRerunSecs: res.EstRerunSecs,
		Seconds:      res.FetchSeconds,
	})
	return res, nil
}

// Estimate returns the cost model's read and re-run predictions for
// fetching nEx examples of an intermediate, without executing anything or
// updating query counters.
func (s *System) Estimate(model, interm string, nEx int) (readSecs, rerunSecs float64, err error) {
	m := s.meta.Model(model)
	if m == nil {
		return 0, 0, fmt.Errorf("mistique: %w %q", ErrUnknownModel, model)
	}
	it, ok := s.meta.IntermSnapshot(model, interm)
	if !ok {
		return 0, 0, fmt.Errorf("mistique: %w %s.%s", ErrUnknownIntermediate, model, interm)
	}
	if nEx <= 0 || nEx > it.Rows {
		nEx = it.Rows
	}
	costP := s.CostParams()
	readSecs = cost.ChainReadSeconds(s.bytesPerRow(m, &it), nEx, s.store.MaxDeltaDepth(model, interm), costP)
	if m.Kind == metadata.Stream {
		// No stages to re-run: the READ estimate is the whole story.
		return readSecs, 0, nil
	}
	rerunSecs, err = cost.RerunSeconds(m, it.StageIndex, nEx, costP)
	return readSecs, rerunSecs, err
}

// GetColumn fetches a single column for the first nEx rows.
func (s *System) GetColumn(model, interm, column string, nEx int) ([]float32, error) {
	return s.GetColumnCtx(context.Background(), model, interm, column, nEx)
}

// GetColumnCtx is GetColumn under a context.
func (s *System) GetColumnCtx(ctx context.Context, model, interm, column string, nEx int) ([]float32, error) {
	res, err := s.GetIntermediateCtx(ctx, model, interm, []string{column}, nEx)
	if err != nil {
		return nil, err
	}
	return res.Data.Col(0), nil
}

// bytesPerRow returns the stored width of one example of the intermediate.
func (s *System) bytesPerRow(m *metadata.Model, it *metadata.Interm) int64 {
	if it.StageIndex >= 0 && it.StageIndex < len(m.Stages) {
		if b := m.Stages[it.StageIndex].OutputBytesPerRow; b > 0 {
			return b
		}
	}
	return int64(4 * len(it.Columns))
}

// readMatrix is the ChunkReader's assembly path: it fans the requested
// intermediate's (column, block) chunks out across the worker pool, each
// task reading, decompressing and decoding one chunk and scattering it
// into a disjoint region of the output matrix — so reassembly preserves
// per-(column, block) ordering regardless of completion order. Each task
// checks ctx before touching the store, so a canceled query stops reading
// at chunk granularity.
func (s *System) readMatrix(ctx context.Context, model, interm string, it *metadata.Interm, cols []string, nEx int) (*tensor.Dense, error) {
	out := tensor.NewDense(nEx, len(cols))
	blockRows := s.cfg.RowBlockRows
	nBlocks := (nEx + blockRows - 1) / blockRows
	type task struct{ j, b int }
	tasks := make([]task, 0, len(cols)*nBlocks)
	for j := range cols {
		for b := 0; b < nBlocks; b++ {
			tasks = append(tasks, task{j: j, b: b})
		}
	}
	err := parallel.ForEach(len(tasks), s.workers(), func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		t := tasks[i]
		lo := t.b * blockRows
		want := nEx - lo
		if want > blockRows {
			want = blockRows
		}
		key := colstore.ColumnKey{Model: model, Intermediate: interm, Column: cols[t.j], Block: t.b}
		vals, err := s.store.GetColumnInto(grabColBuf(), key)
		if err != nil {
			return fmt.Errorf("mistique: read %s: %w", key, err)
		}
		defer releaseColBuf(vals)
		if len(vals) < want {
			return fmt.Errorf("mistique: column %s.%s.%s has %d rows in block %d, need %d", model, interm, cols[t.j], len(vals), t.b, want)
		}
		for r := 0; r < want; r++ {
			out.Data[(lo+r)*out.Cols+t.j] = vals[r]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// rerunMatrix recomputes the intermediate by executing the stored model.
// ctx is checked before queueing on the model's execution mutex — a
// canceled query should not lengthen the line for a serialized re-run.
func (s *System) rerunMatrix(ctx context.Context, m *metadata.Model, it *metadata.Interm, cols []string, nEx int) (*tensor.Dense, error) {
	switch m.Kind {
	case metadata.TRAD:
		return s.rerunTRAD(ctx, m.Name, it, cols, nEx)
	case metadata.DNN:
		return s.rerunDNN(ctx, m.Name, it, cols, nEx)
	case metadata.Stream:
		return nil, fmt.Errorf("mistique: stream model %s cannot be re-run; its rows exist only in the store and the WAL", m.Name)
	}
	return nil, fmt.Errorf("mistique: model %s has unknown kind %q", m.Name, m.Kind)
}

func (s *System) rerunTRAD(ctx context.Context, model string, it *metadata.Interm, cols []string, nEx int) (*tensor.Dense, error) {
	pm, ok := s.pipelineModelFor(model)
	if !ok {
		return nil, fmt.Errorf("mistique: pipeline %q not resident; re-log it to enable re-runs", model)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pm.exec.Lock()
	res, err := pm.p.RunTo(it.StageIndex)
	pm.exec.Unlock()
	if err != nil {
		return nil, err
	}
	f := res.Intermediate(it.Name)
	if f == nil {
		return nil, fmt.Errorf("mistique: re-run did not produce %s.%s", model, it.Name)
	}
	full, names := f.FloatMatrix()
	return selectCols(full, names, cols, nEx)
}

func (s *System) rerunDNN(ctx context.Context, model string, it *metadata.Interm, cols []string, nEx int) (*tensor.Dense, error) {
	dm, ok := s.dnnModelFor(model)
	if !ok {
		return nil, fmt.Errorf("mistique: network %q not resident; re-log it to enable re-runs", model)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	in := dm.input
	if nEx < in.N {
		in = in.SliceN(0, nEx)
	}
	dm.exec.Lock()
	act := dm.net.ForwardBatched(in, it.StageIndex, dm.opts.BatchRows)
	dm.exec.Unlock()
	// Apply the same summarization as storage so the column space matches
	// the catalog (pooled schemes shrink the unit count).
	act = s.transformActivation(act, dm.opts.Scheme, dm.opts.PoolAgg)
	m := act.Flatten()
	return selectCols(m, it.Columns, cols, nEx)
}

// RerunRawDNN recomputes a layer's raw (un-summarized, full-precision)
// activations — the ground truth the quantization-fidelity experiments
// (Fig. 9, Tables 2-3) compare against.
func (s *System) RerunRawDNN(model, layer string, nEx int) (*tensor.T4, error) {
	dm, ok := s.dnnModelFor(model)
	if !ok {
		return nil, fmt.Errorf("mistique: network %q not resident", model)
	}
	li, ok := dm.layerOf[layer]
	if !ok {
		return nil, fmt.Errorf("mistique: network %q has no layer %q", model, layer)
	}
	in := dm.input
	if nEx > 0 && nEx < in.N {
		in = in.SliceN(0, nEx)
	}
	dm.exec.Lock()
	defer dm.exec.Unlock()
	return dm.net.ForwardBatched(in, li, dm.opts.BatchRows), nil
}

func selectCols(full *tensor.Dense, names, want []string, nEx int) (*tensor.Dense, error) {
	if nEx > full.Rows {
		nEx = full.Rows
	}
	idx := make([]int, len(want))
	pos := make(map[string]int, len(names))
	for i, n := range names {
		pos[n] = i
	}
	for i, w := range want {
		j, ok := pos[w]
		if !ok {
			return nil, fmt.Errorf("mistique: no column %q in re-run output", w)
		}
		idx[i] = j
	}
	return full.SliceRows(0, nEx).SelectCols(idx), nil
}

// materialize stores an intermediate on demand (adaptive path).
func (s *System) materialize(m *metadata.Model, it *metadata.Interm) error {
	switch m.Kind {
	case metadata.TRAD:
		pm, ok := s.pipelineModelFor(m.Name)
		if !ok {
			return fmt.Errorf("pipeline %q not resident", m.Name)
		}
		_, err := s.materializeTRAD(pm, m.Name, it.Name)
		return err
	case metadata.DNN:
		return s.materializeDNN(m.Name, it)
	}
	return fmt.Errorf("unknown model kind %q", m.Kind)
}

func (s *System) materializeDNN(model string, it *metadata.Interm) error {
	dm, ok := s.dnnModelFor(model)
	if !ok {
		return fmt.Errorf("network %q not resident", model)
	}
	full, err := s.rerunDNN(context.Background(), model, it, it.Columns, it.Rows)
	if err != nil {
		return err
	}
	// Distribution-fitted codecs need a table; fit it from the data being
	// materialized.
	var fitted *quant.Quantizer
	switch dm.opts.Scheme {
	case Scheme8Bit:
		fitted, err = quant.FitKBit(full.Data, 8)
	case SchemeThreshold:
		fitted, err = quant.FitThreshold(full.Data, 0.995)
	}
	if err != nil {
		return err
	}
	stored, err := s.storeMatrix(model, it.Name, full, it.Columns, func([]float32) (*quant.Quantizer, error) {
		return quantFor(dm.opts.Scheme, fitted), nil
	})
	if err != nil {
		return err
	}
	return s.meta.SetMaterialized(model, it.Name, stored, string(dm.opts.Scheme))
}

// recoverRead is the self-healing read path: the cost model chose READ
// but the stored chunks turned out to be unavailable (quarantined by a
// checksum failure, lost to a crash, or gone with a corrupt manifest).
// The query is answered by re-running the model, and the intermediate is
// re-materialized through the normal store path so subsequent queries
// read again. If re-materialization fails, the catalog entry is flipped
// to unmaterialized so the cost model stops choosing READ for data that
// is not there.
func (s *System) recoverRead(ctx context.Context, m *metadata.Model, it *metadata.Interm, cols []string, nEx int, readErr error) (*tensor.Dense, error) {
	data, err := s.rerunMatrix(ctx, m, it, cols, nEx)
	if err != nil {
		return nil, fmt.Errorf("mistique: read %s.%s failed (%v) and rerun recovery failed: %w", m.Name, it.Name, readErr, err)
	}
	s.store.NoteRecoveredRead()
	s.metrics.rerunFallbacks.Inc()
	// Drop the dead mappings first so the fresh puts are stored instead of
	// tripping over quarantined chunk ids.
	s.store.DeleteColumns(m.Name, it.Name)
	if merr := s.materialize(m, it); merr != nil {
		s.meta.SetUnmaterialized(m.Name, it.Name)
	}
	// Re-materialization moved the columns to fresh chunks; drop any
	// diagnostic indexes built over the old ones (their stale signatures
	// would be rejected anyway — this just skips the wasted load).
	if s.nidx != nil {
		s.nidx.InvalidateModel(m.Name)
	}
	return data, nil
}

// healIntermediate re-materializes an intermediate whose stored chunks
// were lost, for query paths that have no rerun representation of their
// own (zone-map scans, row-range reads). On failure the catalog entry is
// flipped to unmaterialized and the error returned.
func (s *System) healIntermediate(model, interm string) error {
	m := s.meta.Model(model)
	if m == nil {
		return fmt.Errorf("mistique: %w %q", ErrUnknownModel, model)
	}
	it, ok := s.meta.IntermSnapshot(model, interm)
	if !ok {
		return fmt.Errorf("mistique: %w %s.%s", ErrUnknownIntermediate, model, interm)
	}
	stop := s.metrics.healSeconds.Time()
	s.store.DeleteColumns(model, interm)
	if err := s.materialize(m, &it); err != nil {
		s.meta.SetUnmaterialized(model, interm)
		return fmt.Errorf("mistique: heal %s.%s: %w", model, interm, err)
	}
	stop()
	s.metrics.heals.Inc()
	s.store.NoteRecoveredRead()
	if s.nidx != nil {
		s.nidx.InvalidateModel(model)
	}
	return nil
}

// FilterRows evaluates `column op bound` over a materialized intermediate
// using the store's zone maps to skip non-matching chunks — the "find
// predictions for examples with neuron-50 activation > 0.5" query class of
// Sec. 8.3. Returns matching global row offsets in order.
func (s *System) FilterRows(model, interm, column string, op colstore.Op, bound float32) ([]int, error) {
	return s.FilterRowsCtx(context.Background(), model, interm, column, op, bound)
}

// FilterRowsCtx is FilterRows under a context. The scan itself is a
// single store call, so cancellation is honored at entry and between the
// scan and its heal-and-retry.
func (s *System) FilterRowsCtx(ctx context.Context, model, interm, column string, op colstore.Op, bound float32) ([]int, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	it, ok := s.meta.IntermSnapshot(model, interm)
	if !ok {
		return nil, fmt.Errorf("mistique: %w %s.%s", ErrUnknownIntermediate, model, interm)
	}
	if !it.Materialized {
		return nil, fmt.Errorf("mistique: %s.%s %w; zone-map scans need stored chunks", model, interm, ErrNotMaterialized)
	}
	if _, err := s.meta.RecordQuery(model, interm); err != nil {
		return nil, err
	}
	defer s.metrics.queryFilterSeconds.Time()()
	// Prefer the neuron-centric index: it decodes only the priority-list
	// segments straddling the bound. Any index-side trouble falls back to
	// the zone-map scan below — both paths return identical rows.
	if rows, ok, ierr := s.filterViaIndex(ctx, model, interm, column, op, bound, it.Rows); ierr != nil {
		return nil, ierr
	} else if ok {
		return rows, nil
	}
	matches, _, err := s.store.ScanColumn(model, interm, column, op, bound)
	if err != nil && recoverableReadErr(err) {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		// Lost chunks: re-materialize from a model re-run, then retry once.
		if herr := s.healIntermediate(model, interm); herr != nil {
			return nil, herr
		}
		matches, _, err = s.store.ScanColumn(model, interm, column, op, bound)
	}
	if err != nil {
		return nil, err
	}
	rows := make([]int, len(matches))
	for i, m := range matches {
		rows[i] = m.Row
	}
	return rows, nil
}

// FilterRowsRangeCtx restricts FilterRowsCtx to global rows [from, to) —
// the shard-local form of the predicate scan used by the cluster router
// (internal/cluster), which owns disjoint row-blocks of an intermediate
// and must evaluate each block exactly once. from <= 0 means row 0 and
// to <= 0 means the intermediate's row count, so the zero range is the
// whole intermediate and old callers are unaffected. Offsets stay global
// and the scan path is the same, so a concatenation of per-block answers
// in block order is byte-identical to the single-node scan.
func (s *System) FilterRowsRangeCtx(ctx context.Context, model, interm, column string, op colstore.Op, bound float32, from, to int) ([]int, error) {
	rows, err := s.FilterRowsCtx(ctx, model, interm, column, op, bound)
	if err != nil {
		return nil, err
	}
	// rows is ascending, so the range restriction is two binary searches.
	lo := 0
	if from > 0 {
		lo = sort.SearchInts(rows, from)
	}
	hi := len(rows)
	if to > 0 {
		hi = sort.SearchInts(rows, to)
	}
	if lo > hi {
		lo = hi
	}
	return rows[lo:hi], nil
}

// GetRows reads rows [from, to) of the given columns from a materialized
// intermediate via the primary (row-aligned block) index, touching only
// the covering RowBlocks. Columns are fetched concurrently.
func (s *System) GetRows(model, interm string, cols []string, from, to int) (*tensor.Dense, error) {
	return s.GetRowsCtx(context.Background(), model, interm, cols, from, to)
}

// GetRowsCtx is GetRows under a context; per-column fetch tasks check ctx
// before touching the store.
func (s *System) GetRowsCtx(ctx context.Context, model, interm string, cols []string, from, to int) (*tensor.Dense, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	it, ok := s.meta.IntermSnapshot(model, interm)
	if !ok {
		return nil, fmt.Errorf("mistique: %w %s.%s", ErrUnknownIntermediate, model, interm)
	}
	if !it.Materialized {
		return nil, fmt.Errorf("mistique: %s.%s %w", model, interm, ErrNotMaterialized)
	}
	if to > it.Rows {
		to = it.Rows
	}
	if from < 0 || from > to {
		return nil, fmt.Errorf("mistique: bad row range [%d, %d)", from, to)
	}
	if _, err := s.meta.RecordQuery(model, interm); err != nil {
		return nil, err
	}
	if len(cols) == 0 {
		cols = it.Columns
	}
	defer s.metrics.queryGetRowsSeconds.Time()()
	return s.readRowRange(ctx, model, interm, cols, from, to)
}

// readRowRange assembles rows [from, to) of the given columns via the
// primary (row-aligned block) index, fetching columns concurrently and
// healing lost chunks with one re-materialize-and-retry. Shared by GetRows
// and the KNN block scanner.
func (s *System) readRowRange(ctx context.Context, model, interm string, cols []string, from, to int) (*tensor.Dense, error) {
	fetch := func() (*tensor.Dense, error) {
		out := tensor.NewDense(to-from, len(cols))
		err := parallel.ForEach(len(cols), s.workers(), func(j int) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			vals, err := s.store.GetColumnRange(model, interm, cols[j], from, to)
			if err != nil {
				return err
			}
			out.SetCol(j, vals)
			return nil
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	out, err := fetch()
	if err != nil && recoverableReadErr(err) {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		// Lost chunks: re-materialize from a model re-run, then retry once.
		if herr := s.healIntermediate(model, interm); herr != nil {
			return nil, herr
		}
		out, err = fetch()
	}
	return out, err
}
