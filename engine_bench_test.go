package mistique

// Engine-level microbenchmarks: the hot paths under each experiment —
// logging a pipeline, reading an intermediate (warm and cold), re-running,
// and zone-map scans.

import (
	"fmt"
	"runtime"
	"testing"

	"mistique/internal/colstore"
	"mistique/internal/cost"
	"mistique/internal/data"
	"mistique/internal/nn"
	"mistique/internal/pipeline"
	"mistique/internal/zillow"
)

func benchSystem(b *testing.B) *System {
	b.Helper()
	s, err := Open(b.TempDir(), Config{})
	if err != nil {
		b.Fatal(err)
	}
	spec, err := pipeline.SpecFromYAML(demoSpec)
	if err != nil {
		b.Fatal(err)
	}
	p, err := pipeline.New(spec)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.LogPipeline(p, zillow.Env(200, 2048, 1)); err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkLogPipeline(b *testing.B) {
	env := zillow.Env(200, 2048, 1)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := Open(b.TempDir(), Config{})
		if err != nil {
			b.Fatal(err)
		}
		spec, _ := pipeline.SpecFromYAML(demoSpec)
		p, _ := pipeline.New(spec)
		b.StartTimer()
		if _, err := s.LogPipeline(p, env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadIntermediateWarm(b *testing.B) {
	s := benchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fetch("demo", "joined", nil, 0, cost.Read); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadIntermediateCold(b *testing.B) {
	s := benchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := s.Store().DropCache(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := s.Fetch("demo", "joined", nil, 0, cost.Read); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRerunIntermediate(b *testing.B) {
	s := benchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fetch("demo", "joined", nil, 0, cost.Rerun); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilterRowsZoneScan(b *testing.B) {
	s := benchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.FilterRows("demo", "joined", "yearbuilt", colstore.Ge, 2018); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWorkerCounts sweeps the Workers knob: serial baseline, a fixed mid
// point, and every core. On a multi-core box the GOMAXPROCS run should beat
// workers=1 on both parallel paths; on one core all three should tie (the
// pool must not cost anything when it cannot help).
func benchWorkerCounts() []int {
	counts := []int{1, 4}
	if np := runtime.GOMAXPROCS(0); np != 1 && np != 4 {
		counts = append(counts, np)
	}
	return counts
}

// BenchmarkLogDNNParallel measures the ingest hot path: one conv layer's
// 2048 pooled columns fanned across the worker pool while the forward pass
// stops at the deepest logged layer.
func BenchmarkLogDNNParallel(b *testing.B) {
	net := nn.SimpleCNN("cnn", 4, 1)
	imgs, _ := data.Images(32, 4, 2)
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s, err := Open(b.TempDir(), Config{
					RowBlockRows: 64,
					Workers:      w,
					Store:        colstore.Config{Mode: colstore.ModeArrival, Workers: w},
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := s.LogDNN("cnn", net, imgs, DNNLogOptions{
					Scheme: SchemePool2,
					Layers: []int{0},
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFlushParallel measures the flush hot path: many dirty
// partitions compressed and written concurrently. Puts happen off the
// clock; only Flush is timed.
func BenchmarkFlushParallel(b *testing.B) {
	const cols, rows = 256, 64
	vals := make([][]float32, cols)
	for j := range vals {
		col := make([]float32, rows)
		for r := range col {
			col[r] = float32(j*rows+r) / 7 // distinct per column: no dedup
		}
		vals[j] = col
	}
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s, err := colstore.Open(b.TempDir(), colstore.Config{
					RowBlockRows:         rows,
					PartitionTargetBytes: 8 << 10,
					Workers:              w,
				})
				if err != nil {
					b.Fatal(err)
				}
				for j := range vals {
					key := colstore.ColumnKey{Model: "m", Intermediate: "x", Column: fmt.Sprintf("c%d", j)}
					if _, err := s.PutColumn(key, vals[j], nil); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				if err := s.Flush(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSessionCachedGet(b *testing.B) {
	s := benchSystem(b)
	sess := NewSession(s, 0)
	if _, err := sess.Get("demo", "joined", nil, 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Get("demo", "joined", nil, 0); err != nil {
			b.Fatal(err)
		}
	}
}
