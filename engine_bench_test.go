package mistique

// Engine-level microbenchmarks: the hot paths under each experiment —
// logging a pipeline, reading an intermediate (warm and cold), re-running,
// and zone-map scans.

import (
	"testing"

	"mistique/internal/colstore"
	"mistique/internal/cost"
	"mistique/internal/pipeline"
	"mistique/internal/zillow"
)

func benchSystem(b *testing.B) *System {
	b.Helper()
	s, err := Open(b.TempDir(), Config{})
	if err != nil {
		b.Fatal(err)
	}
	spec, err := pipeline.SpecFromYAML(demoSpec)
	if err != nil {
		b.Fatal(err)
	}
	p, err := pipeline.New(spec)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.LogPipeline(p, zillow.Env(200, 2048, 1)); err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkLogPipeline(b *testing.B) {
	env := zillow.Env(200, 2048, 1)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := Open(b.TempDir(), Config{})
		if err != nil {
			b.Fatal(err)
		}
		spec, _ := pipeline.SpecFromYAML(demoSpec)
		p, _ := pipeline.New(spec)
		b.StartTimer()
		if _, err := s.LogPipeline(p, env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadIntermediateWarm(b *testing.B) {
	s := benchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fetch("demo", "joined", nil, 0, cost.Read); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadIntermediateCold(b *testing.B) {
	s := benchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := s.Store().DropCache(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := s.Fetch("demo", "joined", nil, 0, cost.Read); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRerunIntermediate(b *testing.B) {
	s := benchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fetch("demo", "joined", nil, 0, cost.Rerun); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilterRowsZoneScan(b *testing.B) {
	s := benchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.FilterRows("demo", "joined", "yearbuilt", colstore.Ge, 2018); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSessionCachedGet(b *testing.B) {
	s := benchSystem(b)
	sess := NewSession(s, 0)
	if _, err := sess.Get("demo", "joined", nil, 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Get("demo", "joined", nil, 0); err != nil {
			b.Fatal(err)
		}
	}
}
