package mistique

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"mistique/internal/colstore"
	"mistique/internal/diag"
)

// TestIndexScanParitySchemes is the engine-level arm of the differential
// harness: the indexed TOPK / FilterRows / KNN paths must agree exactly
// with internal/diag full scans over the same reconstructed data, on every
// storage scheme (exact floats, LP-quantized, 8-bit) — the index sees
// whatever the dequantizer hands back, so parity must hold per scheme, not
// just on exact data.
func TestIndexScanParitySchemes(t *testing.T) {
	for _, scheme := range []Scheme{SchemeFull, SchemeLP, Scheme8Bit} {
		t.Run(string(scheme), func(t *testing.T) {
			s, _ := dnnSetup(t, scheme, 96)
			const model, interm = "cnn@e0", "logits"
			it := s.Metadata().Intermediate(model, interm)
			if it == nil || !it.Materialized {
				t.Fatal("logits not materialized")
			}
			n := it.Rows
			for _, column := range it.Columns {
				col, err := s.GetColumn(model, interm, column, 0)
				if err != nil {
					t.Fatal(err)
				}
				for _, k := range []int{0, 1, n, n + 1} {
					got, err := s.TopK(model, interm, column, k)
					if err != nil {
						t.Fatalf("%s k=%d: %v", column, k, err)
					}
					want := diag.TopK(col, k)
					if len(got) != len(want) {
						t.Fatalf("%s k=%d: %d entries, oracle %d", column, k, len(got), len(want))
					}
					for i, r := range want {
						if got[i].Row != r || math.Float32bits(got[i].Value) != math.Float32bits(col[r]) {
							t.Fatalf("%s k=%d entry %d: {%d %v}, oracle {%d %v}",
								column, k, i, got[i].Row, got[i].Value, r, col[r])
						}
					}
				}
				for _, op := range []colstore.Op{colstore.Gt, colstore.Ge, colstore.Lt, colstore.Le} {
					bound := col[n/2]
					got, err := s.FilterRows(model, interm, column, op, bound)
					if err != nil {
						t.Fatalf("%s %v: %v", column, op, err)
					}
					want := naiveFilter(col, op, bound)
					if len(got) != len(want) {
						t.Fatalf("%s %v %v: %d rows, oracle %d", column, op, bound, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%s %v: row %d = %d, oracle %d", column, op, i, got[i], want[i])
						}
					}
				}
			}
			// KNN through the zone-pruned path vs the naive scan.
			x, err := s.GetRows(model, interm, nil, 0, n)
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range []int{0, n / 2, n - 1} {
				for _, k := range []int{0, 1, 5, n, n + 1} {
					got, err := s.KNN(model, interm, q, k)
					if err != nil {
						t.Fatalf("knn q=%d k=%d: %v", q, k, err)
					}
					want := diag.KNN(x, x.Row(q), k, q)
					if len(got) != len(want) {
						t.Fatalf("knn q=%d k=%d: %d rows, oracle %d", q, k, len(got), len(want))
					}
					for i, r := range want {
						if got[i].Row != r {
							t.Fatalf("knn q=%d k=%d: rank %d = row %d, oracle %d", q, k, i, got[i].Row, r)
						}
					}
				}
			}
		})
	}
}

func naiveFilter(col []float32, op colstore.Op, bound float32) []int {
	out := []int{}
	for i, v := range col {
		var match bool
		switch op {
		case colstore.Gt:
			match = v > bound
		case colstore.Ge:
			match = v >= bound
		case colstore.Lt:
			match = v < bound
		default:
			match = v <= bound
		}
		if match {
			out = append(out, i)
		}
	}
	return out
}

// TestFilterRowsIndexHealsAfterLoss is the index-side twin of
// TestFilterRowsHealsAfterLoss: with the neuron index enabled and then
// invalidated, a FilterRows over lost chunks must rebuild the index, whose
// column fetch heals the intermediate by rerunning — the answer survives
// total chunk loss with zero stale-index shortcuts.
func TestFilterRowsIndexHealsAfterLoss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	logDemo(t, s)
	want, err := s.FilterRows("demo", "joined", "yearbuilt", colstore.Ge, 2015)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Store().DropCache(); err != nil {
		t.Fatal(err)
	}
	corruptDataFiles(t, dir)
	// Drop the index too (memory + files): the rebuild's column fetch now
	// has nothing valid to read and must go through the heal path.
	s.nidx.InvalidateModel("demo")

	got, err := s.FilterRows("demo", "joined", "yearbuilt", colstore.Ge, 2015)
	if err != nil {
		t.Fatalf("indexed scan against corrupt store: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("healed indexed scan found %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("healed indexed scan row %d = %d, want %d", i, got[i], want[i])
		}
	}
	if s.Store().Stats().RecoveredReads == 0 {
		t.Fatal("index rebuild did not go through the heal path")
	}
}

// TestIndexServesOverLostChunks pins the index-as-replica property: a
// published, signature-valid index answers TOPK correctly even when every
// partition file is corrupt, because it carries its own checksummed copy
// of the column.
func TestIndexServesOverLostChunks(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	logDemo(t, s)
	want, err := s.TopK("demo", "joined", "yearbuilt", 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Store().DropCache(); err != nil {
		t.Fatal(err)
	}
	corruptDataFiles(t, dir)

	got, err := s.TopK("demo", "joined", "yearbuilt", 10)
	if err != nil {
		t.Fatalf("indexed topk over corrupt store: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replica answer diverges at %d", i)
		}
	}
	if s.Store().Stats().RecoveredReads != 0 {
		t.Fatal("index replica answer should not have touched the corrupt chunks")
	}
}

func TestTopKValidation(t *testing.T) {
	s := openSys(t, Config{})
	logDemo(t, s)
	if _, err := s.TopK("demo", "joined", "no_such_column", 3); !errors.Is(err, ErrUnknownColumn) {
		t.Fatalf("unknown column: %v", err)
	}
	if _, err := s.TopK("demo", "no_such_interm", "yearbuilt", 3); !errors.Is(err, ErrUnknownIntermediate) {
		t.Fatalf("unknown intermediate: %v", err)
	}
	if _, err := s.KNN("demo", "joined", -1, 3); err == nil {
		t.Fatal("negative query row accepted")
	}
	if _, err := s.KNN("demo", "joined", 600, 3); err == nil {
		t.Fatal("out-of-range query row accepted")
	}

	lazy := openSys(t, Config{Gamma: 1e12}) // adaptive: nothing stored
	logDemo(t, lazy)
	if _, err := lazy.TopK("demo", "joined", "yearbuilt", 3); !errors.Is(err, ErrNotMaterialized) {
		t.Fatalf("unmaterialized topk: %v", err)
	}
}

func TestTopKIndexCountersAndInvalidation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	logDemo(t, s)
	if _, err := s.TopK("demo", "joined", "yearbuilt", 5); err != nil {
		t.Fatal(err)
	}
	if _, err := s.TopK("demo", "joined", "yearbuilt", 5); err != nil {
		t.Fatal(err)
	}
	snap := s.Metrics()
	if snap.Counters["mistique_index_builds_total"] != 1 {
		t.Fatalf("builds = %d, want 1", snap.Counters["mistique_index_builds_total"])
	}
	if snap.Counters["mistique_index_hits_total"] == 0 {
		t.Fatal("second topk did not hit the cached index")
	}
	if snap.Gauges["mistique_index_bytes"] <= 0 {
		t.Fatal("resident index bytes not reported")
	}

	idxDir := filepath.Join(dir, "data", "nindex")
	entries, err := os.ReadDir(idxDir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("index not persisted: %v (%d files)", err, len(entries))
	}
	if err := s.DropModel("demo"); err != nil {
		t.Fatal(err)
	}
	entries, err = os.ReadDir(idxDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Fatalf("DropModel left index file %q", e.Name())
	}
}

func TestTopKDisabledIndexStillAnswers(t *testing.T) {
	s, err := Open(t.TempDir(), Config{Index: IndexConfig{Disable: true}})
	if err != nil {
		t.Fatal(err)
	}
	logDemo(t, s)
	got, err := s.TopK("demo", "joined", "yearbuilt", 5)
	if err != nil {
		t.Fatal(err)
	}
	col, err := s.GetColumn("demo", "joined", "yearbuilt", 0)
	if err != nil {
		t.Fatal(err)
	}
	want := diag.TopK(col, 5)
	for i, r := range want {
		if got[i].Row != r {
			t.Fatalf("scan fallback rank %d = row %d, want %d", i, got[i].Row, r)
		}
	}
	if s.Metrics().Counters["mistique_index_builds_total"] != 0 {
		t.Fatal("disabled index still built")
	}
}
