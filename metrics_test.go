package mistique

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mistique/internal/colstore"
	"mistique/internal/cost"
)

// TestMetricsEndToEnd is the observability acceptance scenario: log a
// model, flush, query twice (one rerun, one read), corrupt the on-disk
// partitions to force a rerun-fallback recovery and a scan-path heal, then
// assert that the ingest/flush/query/recovery counters and latency
// histograms all moved and that both exposition formats carry them.
func TestMetricsEndToEnd(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{SlowQueryThreshold: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	logDemo(t, s)

	// One forced rerun, one cost-model read.
	if _, err := s.Fetch("demo", "model", []string{"pred"}, 0, cost.Rerun); err != nil {
		t.Fatal(err)
	}
	read, err := s.GetIntermediate("demo", "model", []string{"pred"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if read.Strategy != cost.Read {
		t.Fatalf("setup: expected READ, got %v", read.Strategy)
	}

	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Store().DropCache(); err != nil {
		t.Fatal(err)
	}
	if n := corruptDataFiles(t, dir); n == 0 {
		t.Fatal("no partition files to corrupt")
	}

	// READ hits the corruption and transparently falls back to rerun.
	rec, err := s.GetIntermediate("demo", "model", []string{"pred"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Recovered {
		t.Fatal("query against corrupt store did not recover")
	}

	// Corrupt again so the zone-map scan path exercises heal-and-retry.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Store().DropCache(); err != nil {
		t.Fatal(err)
	}
	if n := corruptDataFiles(t, dir); n == 0 {
		t.Fatal("no partition files to corrupt for the heal path")
	}
	if _, err := s.FilterRows("demo", "model", "pred", colstore.Gt, -1e30); err != nil {
		t.Fatalf("FilterRows with heal: %v", err)
	}

	snap := s.Metrics()

	wantCounterMin := map[string]int64{
		"mistique_models_logged_total":            1,
		"mistique_queries_total":                  3, // fetch + read + recovered
		"mistique_query_rerun_fallbacks_total":    1,
		"mistique_heals_total":                    1,
		"mistique_slow_queries_total":             1,
		"mistique_catalog_queries_total":          4, // + FilterRows
		"mistique_store_flushes_total":            1,
		"mistique_store_quarantines_total":        1,
		"mistique_store_chunks_put_total":         1,
		"mistique_store_corrupt_partitions_total": 1,
		"mistique_store_recovered_reads_total":    2, // fallback + heal
		"mistique_store_fsyncs_total":             1,
	}
	for name, min := range wantCounterMin {
		if got := snap.Counters[name]; got < min {
			t.Errorf("counter %s = %d, want >= %d", name, got, min)
		}
	}
	if snap.Gauges["mistique_store_partitions"] <= 0 {
		t.Errorf("gauge mistique_store_partitions = %d, want > 0", snap.Gauges["mistique_store_partitions"])
	}

	wantHistMin := map[string]int64{
		"mistique_ingest_seconds":                1,
		"mistique_query_read_seconds":            1, // the clean READ
		"mistique_query_rerun_seconds":           2, // forced rerun + recovered
		"mistique_query_filter_rows_seconds":     1,
		"mistique_cost_read_rel_error":           1,
		"mistique_cost_rerun_rel_error":          1,
		"mistique_heal_seconds":                  1,
		"mistique_store_put_encode_seconds":      1,
		"mistique_store_put_hash_seconds":        1,
		"mistique_store_put_append_seconds":      1,
		"mistique_flush_partition_write_seconds": 1,
		"mistique_catalog_save_seconds":          1,
	}
	for name, min := range wantHistMin {
		h, ok := snap.Histograms[name]
		if !ok {
			t.Errorf("histogram %s missing from snapshot", name)
			continue
		}
		if h.Count < min {
			t.Errorf("histogram %s count = %d, want >= %d", name, h.Count, min)
		}
		if h.Count > 0 && (h.P50 < 0 || h.P99 < h.P50) {
			t.Errorf("histogram %s quantiles out of order: p50=%g p99=%g", name, h.P50, h.P99)
		}
	}

	// Prometheus exposition carries the counters and the histogram series.
	var prom bytes.Buffer
	if err := s.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	text := prom.String()
	for _, want := range []string{
		"# TYPE mistique_queries_total counter",
		"mistique_query_rerun_fallbacks_total 1",
		"# TYPE mistique_query_read_seconds histogram",
		`mistique_query_read_seconds_bucket{le="+Inf"}`,
		"mistique_query_read_seconds_sum",
		"mistique_query_read_seconds_count",
		"# TYPE mistique_store_partitions gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Prometheus exposition missing %q", want)
		}
	}

	// JSON exposition round-trips and surfaces the quantiles.
	var js bytes.Buffer
	if err := snap.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Counters   map[string]int64 `json:"counters"`
		Histograms map[string]struct {
			Count int64   `json:"count"`
			P99   float64 `json:"p99"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(js.Bytes(), &decoded); err != nil {
		t.Fatalf("stats JSON does not parse: %v", err)
	}
	if decoded.Counters["mistique_queries_total"] < 3 {
		t.Errorf("JSON counters missing queries_total: %+v", decoded.Counters)
	}
	if h := decoded.Histograms["mistique_query_rerun_seconds"]; h.Count < 2 || h.P99 <= 0 {
		t.Errorf("JSON histogram rerun_seconds = %+v", h)
	}

	// The slow-query log recorded every query (threshold 1ns) with the
	// fields needed to replay the decision.
	blob, err := os.ReadFile(filepath.Join(dir, slowQueryLogName))
	if err != nil {
		t.Fatalf("slow-query log missing: %v", err)
	}
	lines := 0
	sc := bufio.NewScanner(bytes.NewReader(blob))
	for sc.Scan() {
		var rec slowQueryRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("slow-query line %d does not parse: %v", lines, err)
		}
		if rec.Model != "demo" || rec.Strategy == "" || rec.Seconds <= 0 {
			t.Fatalf("slow-query record incomplete: %+v", rec)
		}
		lines++
	}
	if lines < 3 {
		t.Fatalf("slow-query log has %d records, want >= 3", lines)
	}
}

// TestMetricsCostModelError pins the estimate-vs-actual tracking: every
// non-recovered query must observe one relative-error sample for the
// strategy it executed.
func TestMetricsCostModelError(t *testing.T) {
	s := openSys(t, Config{})
	logDemo(t, s)

	before := s.Metrics()
	if _, err := s.GetIntermediate("demo", "model", []string{"pred"}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fetch("demo", "model", []string{"pred"}, 0, cost.Rerun); err != nil {
		t.Fatal(err)
	}
	after := s.Metrics()

	readErr := after.Histograms["mistique_cost_read_rel_error"].Count - before.Histograms["mistique_cost_read_rel_error"].Count
	rerunErr := after.Histograms["mistique_cost_rerun_rel_error"].Count - before.Histograms["mistique_cost_rerun_rel_error"].Count
	if readErr != 1 {
		t.Errorf("read rel-error samples = %d, want 1", readErr)
	}
	if rerunErr != 1 {
		t.Errorf("rerun rel-error samples = %d, want 1", rerunErr)
	}
}

// TestMetricsDisabledSlowLog checks that a zero threshold writes nothing.
func TestMetricsDisabledSlowLog(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	logDemo(t, s)
	if _, err := s.GetIntermediate("demo", "model", nil, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, slowQueryLogName)); !os.IsNotExist(err) {
		t.Fatalf("slow-query log exists with threshold disabled (stat err=%v)", err)
	}
	if n := s.Metrics().Counters["mistique_slow_queries_total"]; n != 0 {
		t.Fatalf("slow_queries_total = %d with threshold disabled", n)
	}
}

// TestSlowQueryLogRotation drives the slow-query log past its byte bound
// and checks the single-generation rotation: the live file is cut over to
// slow_queries.jsonl.1 and both stay valid JSON-lines.
func TestSlowQueryLogRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{SlowQueryThreshold: time.Nanosecond, SlowQueryLogMaxBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	logDemo(t, s)
	for i := 0; i < 12; i++ {
		if _, err := s.GetIntermediate("demo", "model", []string{"pred"}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	gen1 := filepath.Join(dir, "slow_queries.jsonl.1")
	st, err := os.Stat(gen1)
	if err != nil {
		t.Fatalf("no rotated generation: %v", err)
	}
	if st.Size() < 512 {
		t.Fatalf("rotated generation only %d bytes, rotation fired early", st.Size())
	}
	lines := 0
	for _, path := range []string{filepath.Join(dir, "slow_queries.jsonl"), gen1} {
		blob, err := os.ReadFile(path)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(bytes.NewReader(blob))
		for sc.Scan() {
			var rec map[string]any
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				t.Fatalf("%s: bad line %q: %v", path, sc.Text(), err)
			}
			lines++
		}
	}
	if lines == 0 {
		t.Fatal("no slow-query lines survived rotation")
	}
	if lines > 12 {
		t.Fatalf("%d lines across two generations, want <= 12", lines)
	}
}
