package mistique

import (
	"fmt"
	"sort"
	"strings"
)

// The paper's future-work section observes that "a diagnosis session often
// involves many queries, and therefore there may be opportunities to
// further reduce execution time via caching and pre-fetching". Session
// implements both: an LRU result cache over GetIntermediate answers, and a
// Prefetch call that pages an intermediate's partitions into the store's
// buffer pool ahead of use.

// Session wraps a System with a bounded result cache. A Session is not
// safe for concurrent use (it models one analyst's interactive session);
// open one Session per diagnosis thread.
type Session struct {
	sys *System
	// capBytes bounds the cache payload (float32 data bytes).
	capBytes int64
	used     int64
	entries  map[string]*sessionEntry
	order    []string // LRU, least recent first

	// Hits and Misses count cache outcomes for diagnostics.
	Hits, Misses int64
}

type sessionEntry struct {
	res   *Result
	bytes int64
}

// NewSession creates a session cache over sys bounded to capBytes of
// result payload (default 64 MiB when capBytes <= 0).
func NewSession(sys *System, capBytes int64) *Session {
	if capBytes <= 0 {
		capBytes = 64 << 20
	}
	return &Session{sys: sys, capBytes: capBytes, entries: make(map[string]*sessionEntry)}
}

func cacheKey(model, interm string, cols []string, nEx int) string {
	sorted := append([]string(nil), cols...)
	sort.Strings(sorted)
	return fmt.Sprintf("%s\x00%s\x00%s\x00%d", model, interm, strings.Join(sorted, ","), nEx)
}

// Get answers like System.GetIntermediate but serves repeated queries from
// the session cache. Results that trigger adaptive materialization are
// cached too (the underlying data is immutable once logged). Cached
// results are shared between callers: treat the returned Result and its
// Data as read-only.
func (se *Session) Get(model, interm string, cols []string, nEx int) (*Result, error) {
	key := cacheKey(model, interm, cols, nEx)
	if e, ok := se.entries[key]; ok {
		se.Hits++
		se.touch(key)
		return e.res, nil
	}
	se.Misses++
	res, err := se.sys.GetIntermediate(model, interm, cols, nEx)
	if err != nil {
		return nil, err
	}
	se.insert(key, res)
	return res, nil
}

func (se *Session) insert(key string, res *Result) {
	bytes := int64(len(res.Data.Data)) * 4
	if bytes > se.capBytes {
		return // larger than the whole cache: don't thrash
	}
	se.entries[key] = &sessionEntry{res: res, bytes: bytes}
	se.order = append(se.order, key)
	se.used += bytes
	for se.used > se.capBytes && len(se.order) > 0 {
		victim := se.order[0]
		se.order = se.order[1:]
		if e, ok := se.entries[victim]; ok {
			se.used -= e.bytes
			delete(se.entries, victim)
		}
	}
}

func (se *Session) touch(key string) {
	for i, k := range se.order {
		if k == key {
			copy(se.order[i:], se.order[i+1:])
			se.order[len(se.order)-1] = key
			return
		}
	}
}

// Len returns the number of cached results.
func (se *Session) Len() int { return len(se.entries) }

// Invalidate drops every cached result for the given model (e.g. after
// re-logging it).
func (se *Session) Invalidate(model string) {
	prefix := model + "\x00"
	kept := se.order[:0]
	for _, k := range se.order {
		if strings.HasPrefix(k, prefix) {
			if e, ok := se.entries[k]; ok {
				se.used -= e.bytes
				delete(se.entries, k)
			}
			continue
		}
		kept = append(kept, k)
	}
	se.order = kept
}

// Prefetch pages every partition holding the intermediate's chunks into
// the store's buffer pool so a following read is warm. It reads (and
// discards) each column's chunks; the partitions stay resident subject to
// the pool's LRU policy.
func (s *System) Prefetch(model, interm string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	it := s.meta.Intermediate(model, interm)
	if it == nil {
		return fmt.Errorf("mistique: unknown intermediate %s.%s", model, interm)
	}
	if !it.Materialized {
		return fmt.Errorf("mistique: %s.%s not materialized; nothing to prefetch", model, interm)
	}
	_, err := s.readMatrix(model, interm, it, it.Columns, it.Rows)
	return err
}
