package mistique

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The paper's future-work section observes that "a diagnosis session often
// involves many queries, and therefore there may be opportunities to
// further reduce execution time via caching and pre-fetching". Session
// implements both: an LRU result cache over GetIntermediate answers, and a
// Prefetch call that pages an intermediate's partitions into the store's
// buffer pool ahead of use.

// Session wraps a System with a bounded result cache. A Session is safe
// for concurrent use: the cache index is mutex-guarded, and misses query
// the System outside the lock so concurrent analysts don't serialize on
// each other's fetches.
type Session struct {
	sys *System
	// capBytes bounds the cache payload (float32 data bytes).
	capBytes int64

	mu      sync.Mutex
	used    int64
	entries map[string]*sessionEntry
	order   []string // LRU, least recent first

	// hits and misses count cache outcomes, updated under mu; read them
	// via Stats. (They were once exported fields, which raced with
	// concurrent Get calls — any cross-goroutine read must go through the
	// lock.)
	hits, misses int64
}

type sessionEntry struct {
	res   *Result
	bytes int64
}

// NewSession creates a session cache over sys bounded to capBytes of
// result payload (default 64 MiB when capBytes <= 0).
func NewSession(sys *System, capBytes int64) *Session {
	if capBytes <= 0 {
		capBytes = 64 << 20
	}
	return &Session{sys: sys, capBytes: capBytes, entries: make(map[string]*sessionEntry)}
}

// cacheKey builds the cache index key from the query parameters as given.
// Callers must normalize cols/nEx first (normalizeQuery) so the distinct
// spellings of the same query — nil cols vs. the full column list, nEx <= 0
// vs. the exact row count — share one entry instead of caching three
// identical copies of the data.
func cacheKey(model, interm string, cols []string, nEx int) string {
	sorted := append([]string(nil), cols...)
	sort.Strings(sorted)
	return fmt.Sprintf("%s\x00%s\x00%s\x00%d", model, interm, strings.Join(sorted, ","), nEx)
}

// normalizeQuery resolves cols and nEx against the catalog exactly like
// System.GetIntermediate will, so equivalent queries produce equal cache
// keys. Unknown intermediates pass through untouched — the miss path
// reports the real error.
func (se *Session) normalizeQuery(model, interm string, cols []string, nEx int) ([]string, int) {
	it, ok := se.sys.meta.IntermSnapshot(model, interm)
	if !ok {
		return cols, nEx
	}
	if nEx <= 0 || nEx > it.Rows {
		nEx = it.Rows
	}
	if len(cols) == 0 {
		cols = it.Columns
	}
	return cols, nEx
}

// Get answers like System.GetIntermediate but serves repeated queries from
// the session cache. Results that trigger adaptive materialization are
// cached too (the underlying data is immutable once logged). Cached
// results are shared between callers: treat the returned Result and its
// Data as read-only.
func (se *Session) Get(model, interm string, cols []string, nEx int) (*Result, error) {
	cols, nEx = se.normalizeQuery(model, interm, cols, nEx)
	key := cacheKey(model, interm, cols, nEx)
	se.mu.Lock()
	if e, ok := se.entries[key]; ok {
		se.hits++
		se.touchLocked(key)
		se.mu.Unlock()
		se.sys.metrics.sessionHits.Inc()
		return e.res, nil
	}
	se.misses++
	se.mu.Unlock()
	se.sys.metrics.sessionMisses.Inc()
	// Fetch outside the lock; a concurrent miss on the same key runs its
	// own query and whichever inserts first wins (results are identical).
	res, err := se.sys.GetIntermediate(model, interm, cols, nEx)
	if err != nil {
		return nil, err
	}
	se.mu.Lock()
	se.insertLocked(key, res)
	se.mu.Unlock()
	return res, nil
}

// Stats returns the hit/miss counters, safe to call while other
// goroutines are still querying through the session.
func (se *Session) Stats() (hits, misses int64) {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.hits, se.misses
}

func (se *Session) insertLocked(key string, res *Result) {
	if _, dup := se.entries[key]; dup {
		return // a concurrent miss for the same key got here first
	}
	bytes := int64(len(res.Data.Data)) * 4
	if bytes > se.capBytes {
		return // larger than the whole cache: don't thrash
	}
	se.entries[key] = &sessionEntry{res: res, bytes: bytes}
	se.order = append(se.order, key)
	se.used += bytes
	for se.used > se.capBytes && len(se.order) > 0 {
		victim := se.order[0]
		se.order = se.order[1:]
		if e, ok := se.entries[victim]; ok {
			se.used -= e.bytes
			delete(se.entries, victim)
			se.sys.metrics.sessionEvictions.Inc()
		}
	}
}

func (se *Session) touchLocked(key string) {
	for i, k := range se.order {
		if k == key {
			copy(se.order[i:], se.order[i+1:])
			se.order[len(se.order)-1] = key
			return
		}
	}
}

// Len returns the number of cached results.
func (se *Session) Len() int {
	se.mu.Lock()
	defer se.mu.Unlock()
	return len(se.entries)
}

// Invalidate drops every cached result for the given model (e.g. after
// re-logging it).
func (se *Session) Invalidate(model string) {
	se.mu.Lock()
	defer se.mu.Unlock()
	prefix := model + "\x00"
	kept := se.order[:0]
	for _, k := range se.order {
		if strings.HasPrefix(k, prefix) {
			if e, ok := se.entries[k]; ok {
				se.used -= e.bytes
				delete(se.entries, k)
			}
			continue
		}
		kept = append(kept, k)
	}
	se.order = kept
}

// Prefetch pages every partition holding the intermediate's chunks into
// the store's buffer pool so a following read is warm. It reads (and
// discards) each column's chunks; the partitions stay resident subject to
// the pool's LRU policy.
func (s *System) Prefetch(model, interm string) error {
	it, ok := s.meta.IntermSnapshot(model, interm)
	if !ok {
		return fmt.Errorf("mistique: unknown intermediate %s.%s", model, interm)
	}
	if !it.Materialized {
		return fmt.Errorf("mistique: %s.%s not materialized; nothing to prefetch", model, interm)
	}
	_, err := s.readMatrix(context.Background(), model, interm, &it, it.Columns, it.Rows)
	return err
}
