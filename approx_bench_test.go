package mistique

import (
	"math"
	"testing"
	"time"

	"mistique/internal/cost"
)

// approxBenchRows sizes the interactive-SLA benchmarks and the speedup
// acceptance test: 100k rows is the scale where an exact READ pays a
// visible partition-decode cost while the reservoir answers from memory.
const approxBenchRows = 100_000

// approxSystem stream-ingests one 100k-row intermediate and flushes it,
// so the exact path reads real partitions and the sample is the one the
// ingest path maintained incrementally.
func approxSystem(tb testing.TB, rows int64) *System {
	tb.Helper()
	s, err := Open(tb.TempDir(), Config{})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { s.Close() })
	cols := []string{"v", "w"}
	const batch = 4096
	buf := make([][]float32, 0, batch)
	for off := int64(0); off < rows; off += batch {
		buf = buf[:0]
		for r := off; r < off+batch && r < rows; r++ {
			buf = append(buf, []float32{streamVal(r, 0), streamVal(r, 1)})
		}
		if _, err := s.IngestRows("live", "acts", cols, buf); err != nil {
			tb.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		tb.Fatal(err)
	}
	return s
}

// bestOf returns the fastest of n timed runs — the standard way to
// compare latencies on a noisy shared machine.
func bestOf(tb testing.TB, n int, fn func()) time.Duration {
	tb.Helper()
	best := time.Duration(math.MaxInt64)
	for i := 0; i < n; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// TestApproxInteractiveSpeedup is the acceptance gate for the SAMPLE
// strategy: at a 1% error bound on a 100k-row intermediate, COL_DIST and
// top-k answered from the sample must be >= 5x faster than the exact READ
// path, and the reported bound must hold against ground truth computed
// from the generator.
func TestApproxInteractiveSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	s := approxSystem(t, approxBenchRows)

	// The 1% request must be answered by the sample, and the answer must
	// actually be within 1% of range of the true mean (differential proof
	// at the acceptance operating point).
	d, err := s.ColDist("live", "acts", "v", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if d.Strategy != cost.Sample {
		t.Fatalf("1%% bound not deliverable from the sample: %+v", d)
	}
	var exactMean float64
	for r := int64(0); r < approxBenchRows; r++ {
		exactMean += float64(streamVal(r, 0))
	}
	exactMean /= approxBenchRows
	width := float64(d.Max) - float64(d.Min)
	if diff := math.Abs(d.Mean - exactMean); diff > 0.01*width {
		t.Fatalf("sampled mean off by %v (%.3f%% of range)", diff, 100*diff/width)
	}
	// A 1e-12 request must fall back to exact.
	if ex, err := s.ColDist("live", "acts", "v", 1e-12); err != nil {
		t.Fatal(err)
	} else if ex.Strategy == cost.Sample {
		t.Fatal("1e-12 bound incorrectly claimed by the sample")
	}

	approxDist := bestOf(t, 9, func() {
		if _, err := s.ColDist("live", "acts", "v", 0.01); err != nil {
			t.Fatal(err)
		}
	})
	exactDist := bestOf(t, 9, func() {
		if _, err := s.ColDist("live", "acts", "v", 1e-12); err != nil {
			t.Fatal(err)
		}
	})
	if exactDist < 5*approxDist {
		t.Errorf("COL_DIST speedup %.1fx < 5x (approx %v, exact %v)",
			float64(exactDist)/float64(approxDist), approxDist, exactDist)
	}

	approxTopK := bestOf(t, 9, func() {
		if _, err := s.ApproxTopK("live", "acts", "v", 10, 0.01); err != nil {
			t.Fatal(err)
		}
	})
	exactTopK := bestOf(t, 9, func() {
		if _, err := s.ApproxTopK("live", "acts", "v", 10, 1e-12); err != nil {
			t.Fatal(err)
		}
	})
	if exactTopK < 5*approxTopK {
		t.Errorf("top-k speedup %.1fx < 5x (approx %v, exact %v)",
			float64(exactTopK)/float64(approxTopK), approxTopK, exactTopK)
	}
}

// BenchmarkApproxColDist: COL_DIST at the interactive operating point —
// strategy=sample answers from the reservoir at a 1% bound, the exact
// variant pays the full partition read it replaces.
func BenchmarkApproxColDist(b *testing.B) {
	s := approxSystem(b, approxBenchRows)
	for _, bc := range []struct {
		name     string
		maxError float64
	}{{"strategy=sample", 0.01}, {"strategy=exact", 1e-12}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.ColDist("live", "acts", "v", bc.maxError); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkApproxTopK: rank queries from the sample vs the exact scan.
func BenchmarkApproxTopK(b *testing.B) {
	s := approxSystem(b, approxBenchRows)
	for _, bc := range []struct {
		name     string
		maxError float64
	}{{"strategy=sample", 0.01}, {"strategy=exact", 1e-12}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.ApproxTopK("live", "acts", "v", 10, bc.maxError); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamingIngest: durable-ack throughput of the WAL-backed
// ingest path, one fsync'd 1024-row batch per op.
func BenchmarkStreamingIngest(b *testing.B) {
	s, err := Open(b.TempDir(), Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	const batch = 1024
	cols := []string{"v", "w"}
	rows := make([][]float32, batch)
	next := int64(0)
	b.SetBytes(batch * int64(len(cols)) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range rows {
			rows[j] = []float32{streamVal(next, 0), streamVal(next, 1)}
			next++
		}
		if _, err := s.IngestRows("live", "acts", cols, rows); err != nil {
			b.Fatal(err)
		}
		if i%64 == 63 {
			b.StopTimer()
			if err := s.Flush(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}
