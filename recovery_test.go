package mistique

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mistique/internal/colstore"
	"mistique/internal/cost"
)

// Engine-level recovery tests: the store loses data (corrupted or deleted
// partition files), and queries must transparently fall back to re-running
// the model — "the model is the backup" — then re-materialize so later
// queries read again.

// corruptDataFiles bit-flips every partition file under the system's store
// directory, returning how many it damaged.
func corruptDataFiles(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(dir, "data"))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), "partition_") {
			continue
		}
		path := filepath.Join(dir, "data", e.Name())
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		blob[len(blob)/2] ^= 0xFF
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		n++
	}
	return n
}

// TestQueryRecoversFromCorruptPartitions is the acceptance scenario of the
// crash matrix: every partition file is corrupted on disk, and a query
// whose cost model chose READ must still return the correct values via the
// rerun fallback, count a RecoveredRead, and re-materialize so the next
// query reads from healthy chunks again.
func TestQueryRecoversFromCorruptPartitions(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	logDemo(t, s)
	// Ground truth from the healthy store (TRAD "model.pred" reads by cost).
	want, err := s.GetIntermediate("demo", "model", []string{"pred"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want.Strategy != cost.Read {
		t.Fatalf("setup: expected READ, got %v", want.Strategy)
	}

	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Store().DropCache(); err != nil {
		t.Fatal(err)
	}
	if n := corruptDataFiles(t, dir); n == 0 {
		t.Fatal("no partition files to corrupt")
	}

	res, err := s.GetIntermediate("demo", "model", []string{"pred"}, 0)
	if err != nil {
		t.Fatalf("query against corrupt store: %v", err)
	}
	if !res.Recovered || res.Strategy != cost.Rerun {
		t.Fatalf("recovered=%v strategy=%v, want recovered rerun", res.Recovered, res.Strategy)
	}
	for i := range want.Data.Data {
		if res.Data.Data[i] != want.Data.Data[i] {
			t.Fatalf("recovered values differ at %d", i)
		}
	}
	st := s.Store().Stats()
	if st.RecoveredReads == 0 {
		t.Fatalf("RecoveredReads = 0 after a recovered query (stats %+v)", st)
	}
	if st.CorruptPartitions == 0 {
		t.Fatalf("CorruptPartitions = 0 after reading corrupt files (stats %+v)", st)
	}

	// The fallback re-materialized the intermediate: the next query reads —
	// from fresh, healthy chunks — and agrees.
	again, err := s.GetIntermediate("demo", "model", []string{"pred"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if again.Strategy != cost.Read || again.Recovered {
		t.Fatalf("post-heal query: strategy=%v recovered=%v, want clean READ", again.Strategy, again.Recovered)
	}
	for i := range want.Data.Data {
		if again.Data.Data[i] != want.Data.Data[i] {
			t.Fatalf("post-heal read differs at %d", i)
		}
	}
}

// TestFilterRowsHealsAfterLoss: zone-map scans have no rerun equivalent of
// their own, so a scan over lost chunks re-materializes the intermediate
// and retries once. The neuron index is disabled so the zone-scan heal
// machinery is what answers — with the index on, a FilterRows over lost
// chunks can be served from the index's own checksummed copy instead
// (TestFilterRowsIndexHealsAfterLoss covers the index-side heal).
func TestFilterRowsHealsAfterLoss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{Index: IndexConfig{Disable: true}})
	if err != nil {
		t.Fatal(err)
	}
	logDemo(t, s)
	want, err := s.FilterRows("demo", "joined", "yearbuilt", colstore.Ge, 2015)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Store().DropCache(); err != nil {
		t.Fatal(err)
	}
	corruptDataFiles(t, dir)

	got, err := s.FilterRows("demo", "joined", "yearbuilt", colstore.Ge, 2015)
	if err != nil {
		t.Fatalf("scan against corrupt store: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("healed scan found %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("healed scan row %d = %d, want %d", i, got[i], want[i])
		}
	}
	if s.Store().Stats().RecoveredReads == 0 {
		t.Fatal("heal did not count a recovered read")
	}
}

// TestGetRowsHealsAfterLoss: same contract for primary-index range reads.
func TestGetRowsHealsAfterLoss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	logDemo(t, s)
	want, err := s.GetRows("demo", "joined", []string{"yearbuilt", "logerror"}, 100, 160)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Store().DropCache(); err != nil {
		t.Fatal(err)
	}
	corruptDataFiles(t, dir)

	got, err := s.GetRows("demo", "joined", []string{"yearbuilt", "logerror"}, 100, 160)
	if err != nil {
		t.Fatalf("range read against corrupt store: %v", err)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("healed range read differs at %d", i)
		}
	}
}

// TestRecoveryWithoutResidentModelFails cleanly: a reopened store (no
// pipelines re-logged) cannot rerun, so a query over lost chunks must
// return an error — not wrong data, not a panic.
func TestRecoveryWithoutResidentModelFails(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	logDemo(t, s)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	corruptDataFiles(t, dir)

	// Fresh process: catalog restored, chunks corrupt, no executor.
	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep := s2.RecoveryReport(); rep == nil || rep.Clean() {
		t.Fatalf("recovery report %+v, want corruption recorded", s2.RecoveryReport())
	}
	if _, err := s2.GetIntermediate("demo", "model", []string{"pred"}, 0); err == nil {
		t.Fatal("query over lost chunks with no rerun path succeeded")
	}
}

// TestCorruptMetadataFailSoft: a scribbled-over catalog must not brick the
// system. Open quarantines it (metadata.json.corrupt) and starts fresh;
// re-logging restores service.
func TestCorruptMetadataFailSoft(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	logDemo(t, s)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	metaPath := filepath.Join(dir, "metadata.json")
	if err := os.WriteFile(metaPath, []byte("}{ not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("open with corrupt catalog: %v", err)
	}
	if s2.Metadata().Model("demo") != nil {
		t.Fatal("corrupt catalog produced a model")
	}
	if _, err := os.Stat(metaPath + ".corrupt"); err != nil {
		t.Fatalf("corrupt catalog not quarantined: %v", err)
	}
	// Service restores by re-logging; chunks in the store dedup the re-puts.
	logDemo(t, s2)
	if _, err := s2.GetIntermediate("demo", "joined", []string{"logerror"}, 0); err != nil {
		t.Fatalf("query after catalog rebuild: %v", err)
	}
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Config{}); err != nil {
		t.Fatalf("reopen after rebuild: %v", err)
	}
}

// TestRecoveryReportCleanOnHealthyReopen: the accessor reports a clean
// sweep for an undamaged directory.
func TestRecoveryReportCleanOnHealthyReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	logDemo(t, s)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep := s2.RecoveryReport(); rep == nil || !rep.Clean() {
		t.Fatalf("healthy reopen not clean: %+v", rep)
	}
}
