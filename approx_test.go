package mistique

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"mistique/internal/cost"
	"mistique/internal/sample"
)

// ingestValues streams one column into model/interm in modest batches.
func ingestValues(t *testing.T, s *System, model, interm, col string, vals []float32) {
	t.Helper()
	const batch = 97
	for off := 0; off < len(vals); off += batch {
		end := off + batch
		if end > len(vals) {
			end = len(vals)
		}
		rows := make([][]float32, 0, end-off)
		for _, v := range vals[off:end] {
			rows = append(rows, []float32{v})
		}
		if _, err := s.IngestRows(model, interm, []string{col}, rows); err != nil {
			t.Fatal(err)
		}
	}
}

// approxDists are the acceptance distributions: bounds must hold on all of
// them, including the adversarial ones (constant, heavy tail, non-finite
// values mixed in).
func approxDists() (names []string, data map[string][]float32) {
	const n = 6000
	rng := rand.New(rand.NewSource(42))
	data = map[string][]float32{}

	uni := make([]float32, n)
	for i := range uni {
		uni[i] = float32(rng.Float64()*200 - 100)
	}
	data["uniform"] = uni

	heavy := make([]float32, n)
	for i := range heavy {
		heavy[i] = float32(math.Pow(rng.Float64()+1e-9, -1.5)) // Pareto-ish
	}
	data["heavy_tail"] = heavy

	cons := make([]float32, n)
	for i := range cons {
		cons[i] = 3.25
	}
	data["constant"] = cons

	nf := make([]float32, n)
	for i := range nf {
		switch {
		case i%7 == 0:
			nf[i] = float32(math.NaN())
		case i%11 == 0:
			nf[i] = float32(math.Inf(1))
		case i%13 == 0:
			nf[i] = float32(math.Inf(-1))
		default:
			nf[i] = float32(rng.NormFloat64())
		}
	}
	data["nonfinite"] = nf

	names = []string{"uniform", "heavy_tail", "constant", "nonfinite"}
	return names, data
}

// TestColDistDifferentialBounds is the differential harness for ColDist:
// the sampled answer's error bounds must hold against ground truth on
// every distribution, and the exact per-column stats must match exactly.
func TestColDistDifferentialBounds(t *testing.T) {
	names, dists := approxDists()
	for _, name := range names {
		vals := dists[name]
		t.Run(name, func(t *testing.T) {
			s := openSys(t, Config{RowBlockRows: 256, Sample: sample.Config{Cap: 512}})
			ingestValues(t, s, "live", "d", "v", vals)

			d, err := s.ColDist("live", "d", "v", 0)
			if err != nil {
				t.Fatal(err)
			}
			if d.Strategy != cost.Sample {
				t.Fatalf("strategy %v, want SAMPLE", d.Strategy)
			}
			var exact ColDist
			exactColDist(&exact, vals)

			if d.Rows != int64(len(vals)) {
				t.Fatalf("rows %d, want %d", d.Rows, len(vals))
			}
			// Counts and extrema are tracked exactly at ingest, never
			// estimated: they must be identical, not just close.
			if d.Finite != exact.Finite || d.NaN != exact.NaN || d.PosInf != exact.PosInf || d.NegInf != exact.NegInf {
				t.Fatalf("counts %+v, want %+v", d, exact)
			}
			if exact.Finite > 0 && (d.Min != exact.Min || d.Max != exact.Max) {
				t.Fatalf("extrema [%v,%v], want [%v,%v]", d.Min, d.Max, exact.Min, exact.Max)
			}
			if exact.Finite == 0 {
				return
			}
			if diff := math.Abs(d.Mean - exact.Mean); diff > d.MeanBound+1e-9 {
				t.Fatalf("mean %v vs exact %v exceeds bound %v", d.Mean, exact.Mean, d.MeanBound)
			}
			if name == "constant" {
				if d.MeanBound != 0 || d.Mean != exact.Mean {
					t.Fatalf("constant column: mean %v bound %v, want exact", d.Mean, d.MeanBound)
				}
			}
			// Median: the returned value's true rank fraction must sit
			// within the rank bound of 0.5 (skip degenerate columns where
			// rank is ill-defined).
			if d.Min != d.Max {
				var less, lessEq float64
				for _, v := range vals {
					if v != v || math.IsInf(float64(v), 0) {
						continue
					}
					if v < d.P50 {
						less++
					}
					if v <= d.P50 {
						lessEq++
					}
				}
				n := float64(exact.Finite)
				slack := d.P50RankBound + 2/n
				if less/n-0.5 > slack || 0.5-lessEq/n > slack {
					t.Fatalf("median %v rank in [%v,%v], bound %v", d.P50, less/n, lessEq/n, d.P50RankBound)
				}
			}
		})
	}
}

// TestColDistTightBoundFallsBack asks for a tighter bound than a 512-row
// sample can deliver: the engine must transparently answer exactly.
func TestColDistTightBoundFallsBack(t *testing.T) {
	_, dists := approxDists()
	vals := dists["uniform"]
	s := openSys(t, Config{RowBlockRows: 256, Sample: sample.Config{Cap: 512}})
	ingestValues(t, s, "live", "d", "v", vals)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	d, err := s.ColDist("live", "d", "v", 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if d.Strategy == cost.Sample {
		t.Fatalf("1e-9 error bound answered from a %d-row sample", d.SampleRows)
	}
	if d.MeanBound != 0 {
		t.Fatalf("exact answer carries bound %v", d.MeanBound)
	}
	var exact ColDist
	exactColDist(&exact, vals)
	if d.Mean != exact.Mean || d.P50 != exact.P50 || d.Std != exact.Std {
		t.Fatalf("exact fallback %+v, want %+v", d, exact)
	}
	if got := s.Metrics().Counters["mistique_sample_fallbacks_total"]; got < 1 {
		t.Fatalf("fallback counter = %v", got)
	}
}

func TestApproxTopKDifferential(t *testing.T) {
	_, dists := approxDists()
	vals := dists["uniform"]
	s := openSys(t, Config{RowBlockRows: 256, Sample: sample.Config{Cap: 512}})
	ingestValues(t, s, "live", "d", "v", vals)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	const k = 20
	a, err := s.ApproxTopK("live", "d", "v", k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Strategy != cost.Sample {
		t.Fatalf("strategy %v, want SAMPLE", a.Strategy)
	}
	if len(a.Entries) != k || a.RankBound <= 0 {
		t.Fatalf("entries %d bound %v", len(a.Entries), a.RankBound)
	}
	n := float64(len(vals))
	kSample := float64(a.SampleRows)
	for i, e := range a.Entries {
		if got := vals[e.Row]; got != e.Value {
			t.Fatalf("entry %d: row %d carries %v, population has %v", i, e.Row, e.Value, got)
		}
		var greater float64
		for _, v := range vals {
			if v > e.Value {
				greater++
			}
		}
		// The entry's true rank fraction must track its sample rank
		// fraction within the bound (plus one discrete rank of slack).
		if diff := math.Abs(greater/n - float64(i)/kSample); diff > a.RankBound+1/kSample {
			t.Fatalf("entry %d: true rank %v vs sample rank %v exceeds bound %v", i, greater/n, float64(i)/kSample, a.RankBound)
		}
	}

	// A tight bound forces the exact top-k.
	b, err := s.ApproxTopK("live", "d", "v", k, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if b.Strategy == cost.Sample {
		t.Fatal("tight bound answered from the sample")
	}
	type rv struct {
		row int64
		val float32
	}
	want := make([]rv, 0, len(vals))
	for i, v := range vals {
		want = append(want, rv{int64(i), v})
	}
	sort.Slice(want, func(i, j int) bool {
		if want[i].val != want[j].val {
			return want[i].val > want[j].val
		}
		return want[i].row < want[j].row
	})
	if len(b.Entries) != k || b.RankBound != 0 {
		t.Fatalf("exact top-k: %d entries bound %v", len(b.Entries), b.RankBound)
	}
	for i, e := range b.Entries {
		if e.Row != want[i].row || e.Value != want[i].val {
			t.Fatalf("exact entry %d = %+v, want %+v", i, e, want[i])
		}
	}
}

func TestConfusionMatrixDifferential(t *testing.T) {
	const n = 6000
	labels := make([]float32, n)
	preds := make([]float32, n)
	exact := map[[2]float32]float64{}
	for i := 0; i < n; i++ {
		l := float32(i % 5)
		p := l
		if i%10 == 0 {
			p = float32((i + 1) % 5)
		}
		labels[i], preds[i] = l, p
		exact[[2]float32{l, p}]++
	}
	ingest := func(s *System) {
		t.Helper()
		rows := make([][]float32, n)
		for i := range rows {
			rows[i] = []float32{labels[i], preds[i]}
		}
		for off := 0; off < n; off += 500 {
			if _, err := s.IngestRows("live", "d", []string{"label", "pred"}, rows[off:off+500]); err != nil {
				t.Fatal(err)
			}
		}
	}
	check := func(cm *ConfusionMatrix, wantStratified bool) {
		t.Helper()
		if cm.Strategy != cost.Sample {
			t.Fatalf("strategy %v, want SAMPLE", cm.Strategy)
		}
		if cm.Stratified != wantStratified {
			t.Fatalf("stratified = %v, want %v", cm.Stratified, wantStratified)
		}
		if cm.Rows != n {
			t.Fatalf("rows %d, want %d", cm.Rows, n)
		}
		var total float64
		for _, c := range cm.Cells {
			want := exact[[2]float32{c.Label, c.Pred}]
			if diff := math.Abs(c.Count - want); diff > c.Bound+1e-6 {
				t.Fatalf("cell (%v,%v): count %v vs exact %v exceeds bound %v", c.Label, c.Pred, c.Count, want, c.Bound)
			}
			total += c.Count
		}
		if math.Abs(total-n) > float64(n) {
			t.Fatalf("cell mass %v nowhere near %d", total, n)
		}
	}

	// Stratified: the ingest labels key per-class sub-reservoirs.
	s := openSys(t, Config{RowBlockRows: 256, Sample: sample.Config{Cap: 256, StratifyColumn: "label", StratumCap: 64}})
	ingest(s)
	cm, err := s.ConfusionMatrixApprox("live", "d", "label", "pred", 0)
	if err != nil {
		t.Fatal(err)
	}
	check(cm, true)

	// Uniform reservoir only.
	s2 := openSys(t, Config{RowBlockRows: 256, Sample: sample.Config{Cap: 256}})
	ingest(s2)
	cm2, err := s2.ConfusionMatrixApprox("live", "d", "label", "pred", 0)
	if err != nil {
		t.Fatal(err)
	}
	check(cm2, false)

	// A bound tighter than deliverable forces the exact count.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	cm3, err := s.ConfusionMatrixApprox("live", "d", "label", "pred", 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if cm3.Strategy == cost.Sample {
		t.Fatal("1e-12 bound answered from the sample")
	}
	if cm3.MaxBound != 0 {
		t.Fatalf("exact confusion carries bound %v", cm3.MaxBound)
	}
	for _, c := range cm3.Cells {
		if want := exact[[2]float32{c.Label, c.Pred}]; c.Count != want || c.Bound != 0 {
			t.Fatalf("exact cell (%v,%v) = %v±%v, want %v", c.Label, c.Pred, c.Count, c.Bound, want)
		}
	}
}

// TestGetIntermediateApproxRowsAreReal verifies every sampled row carries
// its true population values under its true row id.
func TestGetIntermediateApproxRowsAreReal(t *testing.T) {
	s := openSys(t, Config{RowBlockRows: 128, Sample: sample.Config{Cap: 200}})
	cols := []string{"a", "b"}
	ingestStream(t, s, "live", "acts", cols, 0, 3000, 250)

	res, err := s.GetIntermediateApprox("live", "acts", nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != cost.Sample {
		t.Fatalf("strategy %v, want SAMPLE", res.Strategy)
	}
	if res.Rows != 3000 || len(res.RowIDs) != 100 || res.Data.Rows != 100 {
		t.Fatalf("rows=%d ids=%d data=%d", res.Rows, len(res.RowIDs), res.Data.Rows)
	}
	for i, id := range res.RowIDs {
		if i > 0 && id <= res.RowIDs[i-1] {
			t.Fatalf("row ids not strictly ascending at %d: %v", i, res.RowIDs[i-1:i+1])
		}
		for j := range cols {
			if got, want := res.Data.At(i, j), streamVal(id, j); got != want {
				t.Fatalf("sampled row %d col %d = %v, want %v", id, j, got, want)
			}
		}
	}
}

// TestApproxOnLoggedModel covers the non-streaming ingest path: samples
// built by LogPipeline's storeMatrix, persisted, and reloaded on reopen.
func TestApproxOnLoggedModel(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Sample: sample.Config{Cap: 256}}
	s, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	logDemo(t, s)
	if got := s.Metrics().Counters["mistique_sample_builds_total"]; got < 1 {
		t.Fatalf("sample builds = %v", got)
	}

	exactVals, err := s.GetColumn("demo", "model", "pred", 0)
	if err != nil {
		t.Fatal(err)
	}
	var exact ColDist
	exactColDist(&exact, exactVals)

	d, err := s.ColDist("demo", "model", "pred", 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Strategy != cost.Sample {
		t.Fatalf("strategy %v, want SAMPLE", d.Strategy)
	}
	if d.Rows != int64(len(exactVals)) || d.Finite != exact.Finite {
		t.Fatalf("sampled dist %+v vs exact %+v", d, exact)
	}
	if d.Min != exact.Min || d.Max != exact.Max {
		t.Fatalf("extrema [%v,%v], want [%v,%v]", d.Min, d.Max, exact.Min, exact.Max)
	}
	if diff := math.Abs(d.Mean - exact.Mean); diff > d.MeanBound+1e-9 {
		t.Fatalf("mean %v vs exact %v exceeds bound %v", d.Mean, exact.Mean, d.MeanBound)
	}

	// The sample survives a reopen via its published .mqsm file.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := s2.ColDist("demo", "model", "pred", 0)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Strategy != cost.Sample {
		t.Fatalf("reopened strategy %v, want SAMPLE", d2.Strategy)
	}
	if d2.Mean != d.Mean || d2.SampleRows != d.SampleRows {
		t.Fatalf("reopened sample drifted: %+v vs %+v", d2, d)
	}
}
