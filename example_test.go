package mistique_test

// Runnable godoc examples for the public API. Each uses deterministic
// synthetic data so the Output blocks are stable.

import (
	"fmt"
	"log"
	"os"

	"mistique"
	"mistique/internal/cost"
	"mistique/internal/data"
	"mistique/internal/nn"
	"mistique/internal/pipeline"
	"mistique/internal/zillow"
)

// Example logs a small pipeline and queries one of its intermediates.
func Example() {
	dir, _ := os.MkdirTemp("", "mq-example-*")
	defer os.RemoveAll(dir)

	sys, err := mistique.Open(dir, mistique.Config{})
	if err != nil {
		log.Fatal(err)
	}

	spec, err := pipeline.SpecFromYAML(`
name: demo
stages:
  - name: props
    op: read_table
    params: {table: properties}
  - name: sales
    op: read_table
    params: {table: train}
  - name: joined
    op: join
    inputs: [sales, props]
    params: {on: parcelid}
`)
	if err != nil {
		log.Fatal(err)
	}
	p, err := pipeline.New(spec)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.LogPipeline(p, zillow.Env(100, 400, 1)); err != nil {
		log.Fatal(err)
	}

	res, err := sys.GetIntermediate("demo", "joined", []string{"logerror"}, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Strategy, res.Data.Rows, res.Data.Cols)
	// Output: READ 5 1
}

// ExampleSystem_LogDNN logs a network's layer activations and reads one
// layer back.
func ExampleSystem_LogDNN() {
	dir, _ := os.MkdirTemp("", "mq-example-*")
	defer os.RemoveAll(dir)

	sys, err := mistique.Open(dir, mistique.Config{RowBlockRows: 64})
	if err != nil {
		log.Fatal(err)
	}
	net := nn.SimpleCNN("cnn", 4, 1)
	imgs, _ := data.Images(64, 4, 2)
	rep, err := sys.LogDNN("cnn", net, imgs, mistique.DNNLogOptions{Scheme: mistique.SchemePool2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("intermediates:", rep.Intermediates)

	res, err := sys.GetIntermediate("cnn", "logits", nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("logits shape:", res.Data.Rows, "x", res.Data.Cols)
	// Output:
	// intermediates: 14
	// logits shape: 64 x 4
}

// ExampleSystem_Fetch measures both sides of the read-vs-re-run trade-off
// by forcing each strategy.
func ExampleSystem_Fetch() {
	dir, _ := os.MkdirTemp("", "mq-example-*")
	defer os.RemoveAll(dir)

	sys, _ := mistique.Open(dir, mistique.Config{})
	spec, _ := pipeline.SpecFromYAML(`
name: demo
stages:
  - name: sales
    op: read_table
    params: {table: train}
  - name: filled
    op: fillna
    inputs: [sales]
`)
	p, _ := pipeline.New(spec)
	if _, err := sys.LogPipeline(p, zillow.Env(100, 400, 1)); err != nil {
		log.Fatal(err)
	}

	read, _ := sys.Fetch("demo", "filled", nil, 0, cost.Read)
	rerun, _ := sys.Fetch("demo", "filled", nil, 0, cost.Rerun)
	same := read.Data.Equal(rerun.Data)
	fmt.Println("read equals rerun:", same)
	// Output: read equals rerun: true
}

// ExampleNewSession shows the diagnosis-session result cache.
func ExampleNewSession() {
	dir, _ := os.MkdirTemp("", "mq-example-*")
	defer os.RemoveAll(dir)

	sys, _ := mistique.Open(dir, mistique.Config{})
	spec, _ := pipeline.SpecFromYAML(`
name: demo
stages:
  - name: sales
    op: read_table
    params: {table: train}
`)
	p, _ := pipeline.New(spec)
	if _, err := sys.LogPipeline(p, zillow.Env(100, 400, 1)); err != nil {
		log.Fatal(err)
	}

	sess := mistique.NewSession(sys, 0)
	sess.Get("demo", "sales", nil, 0)
	sess.Get("demo", "sales", nil, 0)
	hits, misses := sess.Stats()
	fmt.Println("hits:", hits, "misses:", misses)
	// Output: hits: 1 misses: 1
}
