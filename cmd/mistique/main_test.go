package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"mistique"
	"mistique/client"
	"mistique/internal/sample"
	"mistique/internal/server"
)

// captureStdout runs fn with os.Stdout redirected into a buffer.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	errCh := make(chan error, 1)
	var buf bytes.Buffer
	go func() {
		_, err := io.Copy(&buf, r)
		errCh <- err
	}()
	fnErr := fn()
	w.Close()
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if fnErr != nil {
		t.Fatal(fnErr)
	}
	return buf.String()
}

// TestStatsFormats drives the CLI end-to-end: log a small workload, run a
// query so the query-path metrics move, then check that `stats -format
// json` parses and `stats -format prom` emits Prometheus exposition with
// ingest/flush counters and latency series.
func TestStatsFormats(t *testing.T) {
	dir := t.TempDir()
	// Sizes must match runQuery's re-log env (400 props x 2048 rows).
	captureStdout(t, func() error {
		return runLog(dir, []string{"-pipelines", "1"})
	})
	captureStdout(t, func() error {
		return runQuery(dir, []string{"-model", "p1_v0", "-interm", "model", "-col", "pred", "-n", "5", "-pipelines", "1"})
	})

	jsonOut := captureStdout(t, func() error {
		return runStats(dir, []string{"-format", "json"})
	})
	var snap struct {
		Counters   map[string]int64           `json:"counters"`
		Gauges     map[string]int64           `json:"gauges"`
		Histograms map[string]json.RawMessage `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(jsonOut), &snap); err != nil {
		t.Fatalf("stats -format json does not parse: %v\n%s", err, jsonOut)
	}
	// The stats process reopens the store, so only persisted/store-derived
	// series are non-zero — but the full metric families must be present.
	if _, ok := snap.Counters["mistique_queries_total"]; !ok {
		t.Errorf("JSON snapshot missing mistique_queries_total: %v", snap.Counters)
	}
	if snap.Gauges["mistique_disk_bytes"] <= 0 {
		t.Errorf("disk bytes gauge = %d, want > 0", snap.Gauges["mistique_disk_bytes"])
	}
	if snap.Gauges["mistique_store_partitions"] <= 0 {
		t.Errorf("partitions gauge = %d, want > 0", snap.Gauges["mistique_store_partitions"])
	}
	if _, ok := snap.Histograms["mistique_query_read_seconds"]; !ok {
		t.Error("JSON snapshot missing mistique_query_read_seconds histogram")
	}

	promOut := captureStdout(t, func() error {
		return runStats(dir, []string{"-format", "prom"})
	})
	for _, want := range []string{
		"# TYPE mistique_queries_total counter",
		"# TYPE mistique_store_partitions gauge",
		"# TYPE mistique_query_read_seconds histogram",
		`mistique_query_read_seconds_bucket{le="+Inf"}`,
		"# TYPE mistique_disk_bytes gauge",
	} {
		if !strings.Contains(promOut, want) {
			t.Errorf("stats -format prom missing %q", want)
		}
	}

	textOut := captureStdout(t, func() error {
		return runStats(dir, []string{})
	})
	if !strings.Contains(textOut, "disk bytes:") {
		t.Errorf("default text stats malformed:\n%s", textOut)
	}

	if err := runStats(dir, []string{"-format", "yaml"}); err == nil {
		t.Error("unknown format accepted")
	}
}

// TestServeGracefulSIGTERM drives the serve command end-to-end: start the
// service on a free port, wait for liveness, run a real query over HTTP,
// send the process SIGTERM, and require runServe to drain and return nil.
// The store must be durable across the shutdown: a fresh System over the
// same directory still answers queries.
func TestServeGracefulSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("serve lifecycle test skipped in -short mode")
	}
	dir := t.TempDir()

	// Reserve a free port, then hand it to serve. The tiny window between
	// Close and the server's Listen is harmless in CI.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	serveErr := make(chan error, 1)
	go func() {
		serveErr <- runServe(dir, []string{"-addr", addr, "-pipelines", "1", "-drain-timeout", "30s"})
	}()

	// Wait for liveness: logging the pipeline happens before Serve, so
	// give it room.
	base := "http://" + addr
	deadline := time.Now().Add(60 * time.Second)
	for {
		select {
		case err := <-serveErr:
			t.Fatalf("serve exited before becoming healthy: %v", err)
		default:
		}
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("serve never became healthy")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// A real query through the typed client proves the API is up.
	c, err := client.New(base)
	if err != nil {
		t.Fatal(err)
	}
	qr, err := c.GetIntermediate(context.Background(), "p1_v0", "model", []string{"pred"}, 8)
	if err != nil {
		t.Fatalf("query against serve: %v", err)
	}
	if qr.Rows != 8 {
		t.Fatalf("query returned %d rows", qr.Rows)
	}

	// SIGTERM: runServe's signal context must drain and return cleanly.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("runServe after SIGTERM: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("runServe did not return after SIGTERM")
	}

	// Durability: everything logged survives the drain.
	sys, err := mistique.Open(dir, mistique.Config{})
	if err != nil {
		t.Fatalf("reopen after drain: %v", err)
	}
	res, err := sys.GetIntermediate("p1_v0", "model", []string{"pred"}, 8)
	if err != nil {
		t.Fatalf("query after reopen: %v", err)
	}
	if res.Data.Rows != 8 {
		t.Fatalf("reopened store returned %d rows", res.Data.Rows)
	}
}

// TestLineageCommand drives `mistique lineage` end-to-end over a logged
// workload: the chain of a pipeline model is a single root entry.
func TestLineageCommand(t *testing.T) {
	dir := t.TempDir()
	captureStdout(t, func() error {
		return runLog(dir, []string{"-pipelines", "1"})
	})
	out := captureStdout(t, func() error {
		return runLineage(dir, []string{"-model", "p1_v0"})
	})
	if !strings.Contains(out, "p1_v0") || !strings.Contains(out, "parent=(root)") {
		t.Fatalf("lineage output = %q", out)
	}
	if err := runLineage(dir, []string{"-model", "missing"}); err == nil {
		t.Fatal("lineage of unknown model succeeded")
	}
}

// TestIngestAndColDistCommands drives the streaming CLI path end to end:
// ingest rows from stdin into a running server, query the sampled column
// stats remotely, then again locally against the store directory after
// the server drains.
func TestIngestAndColDistCommands(t *testing.T) {
	dir := t.TempDir()
	sys, err := mistique.Open(dir, mistique.Config{Sample: sample.Config{Cap: 64}})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(sys, server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var lines bytes.Buffer
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&lines, "%d,%g\n", i, float64(i)+0.5)
	}
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		w.Write(lines.Bytes())
		w.Close()
	}()
	oldStdin := os.Stdin
	os.Stdin = r
	defer func() { os.Stdin = oldStdin }()

	out := captureStdout(t, func() error {
		return runIngest([]string{"-addr", ts.URL, "-model", "live", "-interm", "acts",
			"-cols", "a,b", "-batch", "100", "-tenant", "cli"})
	})
	if !strings.Contains(out, "500 rows acknowledged") {
		t.Fatalf("ingest output: %q", out)
	}

	out = captureStdout(t, func() error {
		return runColDist("", []string{"-addr", ts.URL, "-model", "live", "-interm", "acts", "-col", "a"})
	})
	if !strings.Contains(out, "strategy=SAMPLE") || !strings.Contains(out, "rows=500") {
		t.Fatalf("remote coldist output: %q", out)
	}

	// Drain the server's System, then answer the same question offline.
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	out = captureStdout(t, func() error {
		return runColDist(dir, []string{"-model", "live", "-interm", "acts", "-col", "a"})
	})
	if !strings.Contains(out, "strategy=SAMPLE") || !strings.Contains(out, "rows=500") {
		t.Fatalf("local coldist output: %q", out)
	}
}
