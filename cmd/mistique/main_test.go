package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected into a buffer.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	errCh := make(chan error, 1)
	var buf bytes.Buffer
	go func() {
		_, err := io.Copy(&buf, r)
		errCh <- err
	}()
	fnErr := fn()
	w.Close()
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if fnErr != nil {
		t.Fatal(fnErr)
	}
	return buf.String()
}

// TestStatsFormats drives the CLI end-to-end: log a small workload, run a
// query so the query-path metrics move, then check that `stats -format
// json` parses and `stats -format prom` emits Prometheus exposition with
// ingest/flush counters and latency series.
func TestStatsFormats(t *testing.T) {
	dir := t.TempDir()
	// Sizes must match runQuery's re-log env (400 props x 2048 rows).
	captureStdout(t, func() error {
		return runLog(dir, []string{"-pipelines", "1"})
	})
	captureStdout(t, func() error {
		return runQuery(dir, []string{"-model", "p1_v0", "-interm", "model", "-col", "pred", "-n", "5", "-pipelines", "1"})
	})

	jsonOut := captureStdout(t, func() error {
		return runStats(dir, []string{"-format", "json"})
	})
	var snap struct {
		Counters   map[string]int64           `json:"counters"`
		Gauges     map[string]int64           `json:"gauges"`
		Histograms map[string]json.RawMessage `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(jsonOut), &snap); err != nil {
		t.Fatalf("stats -format json does not parse: %v\n%s", err, jsonOut)
	}
	// The stats process reopens the store, so only persisted/store-derived
	// series are non-zero — but the full metric families must be present.
	if _, ok := snap.Counters["mistique_queries_total"]; !ok {
		t.Errorf("JSON snapshot missing mistique_queries_total: %v", snap.Counters)
	}
	if snap.Gauges["mistique_disk_bytes"] <= 0 {
		t.Errorf("disk bytes gauge = %d, want > 0", snap.Gauges["mistique_disk_bytes"])
	}
	if snap.Gauges["mistique_store_partitions"] <= 0 {
		t.Errorf("partitions gauge = %d, want > 0", snap.Gauges["mistique_store_partitions"])
	}
	if _, ok := snap.Histograms["mistique_query_read_seconds"]; !ok {
		t.Error("JSON snapshot missing mistique_query_read_seconds histogram")
	}

	promOut := captureStdout(t, func() error {
		return runStats(dir, []string{"-format", "prom"})
	})
	for _, want := range []string{
		"# TYPE mistique_queries_total counter",
		"# TYPE mistique_store_partitions gauge",
		"# TYPE mistique_query_read_seconds histogram",
		`mistique_query_read_seconds_bucket{le="+Inf"}`,
		"# TYPE mistique_disk_bytes gauge",
	} {
		if !strings.Contains(promOut, want) {
			t.Errorf("stats -format prom missing %q", want)
		}
	}

	textOut := captureStdout(t, func() error {
		return runStats(dir, []string{})
	})
	if !strings.Contains(textOut, "disk bytes:") {
		t.Errorf("default text stats malformed:\n%s", textOut)
	}

	if err := runStats(dir, []string{"-format", "yaml"}); err == nil {
		t.Error("unknown format accepted")
	}
}
