// Command mistique is a small operational CLI over a MISTIQUE store
// directory. It demonstrates the end-to-end flow against the synthetic
// Zillow workload:
//
//	mistique -dir /tmp/mq log -pipelines 5        # log pipelines
//	mistique -dir /tmp/mq query -model p1_v0 -interm model -col pred
//	mistique -dir /tmp/mq stats                   # store statistics
//	mistique -dir /tmp/mq catalog                 # list models/intermediates
//
// (Pipelines must be re-logged per process to enable RERUN — transformer
// state is in-memory — but previously stored chunks and the catalog are
// read back from disk for stats/catalog inspection.)
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"mistique"
	"mistique/internal/codec"
	"mistique/internal/colstore"
	"mistique/internal/cost"
	"mistique/internal/metadata"
	"mistique/internal/server"
	"mistique/internal/zillow"
)

func main() {
	dir := flag.String("dir", "", "store directory (required for every command but cluster)")
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)
	args := flag.Args()[1:]
	// cluster, ingest and coldist (in -addr mode) talk to running servers
	// over HTTP; they need no store of their own.
	if *dir == "" && cmd != "cluster" && cmd != "ingest" && cmd != "coldist" {
		usage()
		os.Exit(2)
	}

	var err error
	switch cmd {
	case "log":
		err = runLog(*dir, args)
	case "query":
		err = runQuery(*dir, args)
	case "stats":
		err = runStats(*dir, args)
	case "serve":
		err = runServe(*dir, args)
	case "cluster":
		err = runCluster(args)
	case "catalog":
		err = runCatalog(*dir)
	case "lineage":
		err = runLineage(*dir, args)
	case "scan":
		err = runScan(*dir, args)
	case "fsck":
		err = runFsck(*dir)
	case "compact":
		err = runCompact(*dir, args)
	case "ingest":
		err = runIngest(args)
	case "coldist":
		err = runColDist(*dir, args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mistique:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: mistique -dir DIR <command> [flags]

commands:
  log      -pipelines N [-props N] [-rows N] [-dedup]   log Zillow pipelines
  query    -model M -interm I [-col C] [-n N]           fetch an intermediate
  scan     -model M -interm I -col C -op OP -bound V    zone-map predicate scan
  stats    [-format text|json|prom]                     metrics snapshot
  serve    -addr HOST:PORT [-pipelines N] [-shard NAME]  HTTP query service
           [-max-in-flight N] [-request-timeout D] [-drain-timeout D]
           [-codec gzip|store|actz]  partition codec for new flushes
           [-tenant-max-in-flight N] [-tenant-rows-per-sec N]  ingest quotas
  ingest   -addr URL -model M -interm I -cols A,B,C      stream rows from stdin
           [-batch N] [-tenant T]   (no -dir: talks to a running server)
  coldist  -model M -interm I -col C [-max-error F]      sampled column stats
           [-addr URL]   (remote against a server, or local against -dir)
  cluster  -shards URL,URL,... -model M -interm I -col C  scatter-gather query
           [-op topk|filter] [-k N] [-pred gt|ge|lt|le] [-bound V]
           [-replication N] [-block-rows N]   (no -dir: talks to running shards)
  fsck                                                  verify store integrity
  compact  [-codec gzip|store|actz]                     reclaim garbage chunks
  catalog                                               list logged models
  lineage  -model M                                     walk a model's version chain`)
}

// open builds the system. codecName selects the partition codec for new
// flushes ("" keeps the store default; files on disk are always read by
// their own framing, whatever the config says).
func open(dir string, dedup bool, gamma float64, codecName string) (*mistique.System, error) {
	cfg := mistique.Config{Gamma: gamma, Cost: cost.DefaultParams()}
	cfg.Store.Codec = codecName
	if dedup {
		cfg.Store.Mode = colstore.ModeSimilarity
	} else {
		cfg.Store.Mode = colstore.ModeArrival
		cfg.Store.DisableExactDedup = true
		cfg.Store.DisableApproxDedup = true
	}
	return mistique.Open(dir, cfg)
}

func runLog(dir string, args []string) error {
	fs := flag.NewFlagSet("log", flag.ExitOnError)
	nPipes := fs.Int("pipelines", 5, "number of Zillow pipelines to log (max 50)")
	nProps := fs.Int("props", 400, "synthetic parcels")
	nRows := fs.Int("rows", 2048, "synthetic sale records")
	dedup := fs.Bool("dedup", true, "enable de-duplication")
	seed := fs.Int64("seed", 1, "data seed")
	fs.Parse(args)

	sys, err := open(dir, *dedup, 0, "")
	if err != nil {
		return err
	}
	env := zillow.Env(*nProps, *nRows, *seed)
	pipes, err := zillow.Build(env)
	if err != nil {
		return err
	}
	if *nPipes > len(pipes) {
		*nPipes = len(pipes)
	}
	for _, p := range pipes[:*nPipes] {
		rep, err := sys.LogPipeline(p, env)
		if err != nil {
			return err
		}
		fmt.Printf("logged %-8s  %2d intermediates  stored %8d B (logical %8d B)  dedup %d chunks  %.2fs\n",
			rep.Model, rep.Intermediates, rep.StoredBytes, rep.LogicalBytes, rep.ColumnsDedup, rep.Seconds)
	}
	if err := sys.Flush(); err != nil {
		return err
	}
	disk, err := sys.DiskBytes()
	if err != nil {
		return err
	}
	fmt.Printf("on-disk footprint: %d bytes\n", disk)
	return nil
}

func runQuery(dir string, args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	model := fs.String("model", "", "model name")
	interm := fs.String("interm", "", "intermediate name")
	col := fs.String("col", "", "column (default: all)")
	n := fs.Int("n", 10, "examples to fetch")
	nPipes := fs.Int("pipelines", 5, "pipelines to re-log (must cover -model)")
	seed := fs.Int64("seed", 1, "data seed (must match the log run)")
	fs.Parse(args)
	if *model == "" || *interm == "" {
		return fmt.Errorf("query needs -model and -interm")
	}

	// Re-log to rebuild in-memory transformer state; stored chunks dedup
	// against the existing store so this is cheap on a warm directory.
	sys, err := open(dir, true, 0, "")
	if err != nil {
		return err
	}
	env := zillow.Env(400, 2048, *seed)
	pipes, err := zillow.Build(env)
	if err != nil {
		return err
	}
	for _, p := range pipes[:*nPipes] {
		if _, err := sys.LogPipeline(p, env); err != nil {
			return err
		}
	}

	var cols []string
	if *col != "" {
		cols = strings.Split(*col, ",")
	}
	res, err := sys.GetIntermediate(*model, *interm, cols, *n)
	if err != nil {
		return err
	}
	fmt.Printf("strategy=%s fetch=%.4fs est_read=%.4fs est_rerun=%.4fs\n",
		res.Strategy, res.FetchSeconds, res.EstReadSecs, res.EstRerunSecs)
	fmt.Println(strings.Join(res.Cols, "\t"))
	for i := 0; i < res.Data.Rows; i++ {
		row := res.Data.Row(i)
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = fmt.Sprintf("%.4g", v)
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
	return nil
}

func runScan(dir string, args []string) error {
	fs := flag.NewFlagSet("scan", flag.ExitOnError)
	model := fs.String("model", "", "model name")
	interm := fs.String("interm", "", "intermediate name")
	col := fs.String("col", "", "column to scan")
	opStr := fs.String("op", "gt", "predicate: gt, ge, lt, le")
	bound := fs.Float64("bound", 0, "predicate bound")
	limit := fs.Int("limit", 20, "max matches to print")
	nPipes := fs.Int("pipelines", 5, "pipelines to re-log (must cover -model)")
	seed := fs.Int64("seed", 1, "data seed (must match the log run)")
	fs.Parse(args)
	if *model == "" || *interm == "" || *col == "" {
		return fmt.Errorf("scan needs -model, -interm and -col")
	}
	var op colstore.Op
	switch *opStr {
	case "gt":
		op = colstore.Gt
	case "ge":
		op = colstore.Ge
	case "lt":
		op = colstore.Lt
	case "le":
		op = colstore.Le
	default:
		return fmt.Errorf("unknown op %q", *opStr)
	}
	sys, err := open(dir, true, 0, "")
	if err != nil {
		return err
	}
	env := zillow.Env(400, 2048, *seed)
	pipes, err := zillow.Build(env)
	if err != nil {
		return err
	}
	for _, p := range pipes[:*nPipes] {
		if _, err := sys.LogPipeline(p, env); err != nil {
			return err
		}
	}
	rows, err := sys.FilterRows(*model, *interm, *col, op, float32(*bound))
	if err != nil {
		return err
	}
	fmt.Printf("%d rows match %s %s %g\n", len(rows), *col, op, *bound)
	for i, r := range rows {
		if i >= *limit {
			fmt.Printf("... and %d more\n", len(rows)-*limit)
			break
		}
		fmt.Println(r)
	}
	return nil
}

func runFsck(dir string) error {
	sys, err := open(dir, true, 0, "")
	if err != nil {
		return err
	}
	rep, err := sys.Store().Verify()
	if err != nil {
		return err
	}
	fmt.Printf("partitions: %d  chunks: %d  columns: %d  garbage chunks: %d\n",
		rep.Partitions, rep.Chunks, rep.Columns, rep.GarbageChunks)
	if len(rep.Problems) == 0 {
		fmt.Println("store healthy")
		return nil
	}
	for _, p := range rep.Problems {
		fmt.Println("PROBLEM:", p)
	}
	return fmt.Errorf("%d integrity problems", len(rep.Problems))
}

func runCompact(dir string, args []string) error {
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	codecName := fs.String("codec", "", "partition codec for the rewritten files: "+strings.Join(codec.Names(), ", ")+" (default: store default)")
	fs.Parse(args)

	sys, err := open(dir, true, 0, *codecName)
	if err != nil {
		return err
	}
	reclaimed, err := sys.CompactStore()
	if err != nil {
		return err
	}
	fmt.Printf("reclaimed %d bytes\n", reclaimed)
	return nil
}

func runStats(dir string, args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	format := fs.String("format", "text", "output format: text, json, prom")
	fs.Parse(args)

	sys, err := open(dir, true, 0, "")
	if err != nil {
		return err
	}
	disk, err := sys.DiskBytes()
	if err != nil {
		return err
	}
	snap := sys.Metrics()
	snap.Gauges["mistique_disk_bytes"] = disk
	snap.Help["mistique_disk_bytes"] = "on-disk footprint of stored intermediates"

	switch *format {
	case "json":
		return snap.WriteJSON(os.Stdout)
	case "prom":
		return snap.WritePrometheus(os.Stdout)
	case "text":
		st := sys.Store().Stats()
		fmt.Printf("disk bytes:     %d\n", disk)
		fmt.Printf("chunks stored:  %d (session)\n", st.ChunksStored)
		fmt.Printf("chunks deduped: %d (session)\n", st.ChunksDeduped)
		fmt.Printf("partitions:     %d\n", st.Partitions)
		fmt.Printf("corrupt parts:  %d (session)\n", st.CorruptPartitions)
		return nil
	default:
		return fmt.Errorf("unknown -format %q (want text, json or prom)", *format)
	}
}

// runServe runs the query service (internal/server) over the store: the
// full JSON API under /api/v1 plus /metrics, /statsz and /healthz, with
// admission control, per-request deadlines and graceful shutdown —
// SIGINT/SIGTERM stops accepting, drains in-flight requests, then flushes
// the store and catalog so nothing logged is lost. Optionally logs Zillow
// pipelines first so a fresh directory has models to query (and RERUN
// available — transformer state is in-memory).
func runServe(dir string, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "", "listen address (e.g. 127.0.0.1:7420; required)")
	metricsAddr := fs.String("metrics-addr", "", "deprecated alias for -addr")
	nPipes := fs.Int("pipelines", 0, "Zillow pipelines to log before serving")
	seed := fs.Int64("seed", 1, "data seed")
	shard := fs.String("shard", "", "shard name reported by /readyz when this node serves in a cluster")
	maxInFlight := fs.Int("max-in-flight", 64, "admission bound on concurrently executing queries (excess gets 429)")
	tenantInFlight := fs.Int("tenant-max-in-flight", 8, "per-tenant bound on concurrently executing ingest batches")
	tenantRate := fs.Int("tenant-rows-per-sec", 0, "per-tenant streaming ingest rate quota in rows/sec (0 = unlimited)")
	reqTimeout := fs.Duration("request-timeout", 30*time.Second, "per-request context deadline")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "shutdown bound on finishing in-flight requests")
	codecName := fs.String("codec", "", "partition codec for new flushes: "+strings.Join(codec.Names(), ", ")+" (default: store default)")
	fs.Parse(args)
	if *addr == "" {
		*addr = *metricsAddr
	}
	if *addr == "" {
		return fmt.Errorf("serve needs -addr")
	}

	sys, err := open(dir, true, 0, *codecName)
	if err != nil {
		return err
	}
	if *nPipes > 0 {
		env := zillow.Env(400, 2048, *seed)
		pipes, err := zillow.Build(env)
		if err != nil {
			return err
		}
		if *nPipes > len(pipes) {
			*nPipes = len(pipes)
		}
		for _, p := range pipes[:*nPipes] {
			if _, err := sys.LogPipeline(p, env); err != nil {
				return err
			}
		}
	}

	srv := server.New(sys, server.Config{
		ShardName:         *shard,
		MaxInFlight:       *maxInFlight,
		RequestTimeout:    *reqTimeout,
		TenantMaxInFlight: *tenantInFlight,
		TenantRowsPerSec:  *tenantRate,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Printf("serving queries on http://%s/api/v1 (metrics at /metrics, JSON stats at /statsz)\n", ln.Addr())

	select {
	case err := <-serveErr:
		// Listener died on its own; still drain what's in flight and
		// flush so the store closes clean.
		sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if serr := srv.Shutdown(sctx); err == nil {
			err = serr
		}
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills hard
	fmt.Println("signal received; draining in-flight requests")
	sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-serveErr; err != nil {
		return err
	}
	fmt.Println("drained and flushed; bye")
	return nil
}

// runLineage walks a model's version chain (LogDNN Parent links), newest
// first, printing each version's storage footprint and deepest delta
// chain. Opens the store read-mostly: delta depths live in its manifest.
func runLineage(dir string, args []string) error {
	fs := flag.NewFlagSet("lineage", flag.ExitOnError)
	model := fs.String("model", "", "model version to start from")
	fs.Parse(args)
	if *model == "" {
		return fmt.Errorf("lineage needs -model")
	}
	sys, err := open(dir, true, 0, "")
	if err != nil {
		return err
	}
	chain, err := sys.Lineage(*model)
	if err != nil {
		return err
	}
	for i, e := range chain {
		arrow := "└─"
		if i == 0 {
			arrow = "  "
		}
		parent := e.Parent
		if parent == "" {
			parent = "(root)"
		}
		fmt.Printf("%s %-20s kind=%-4s parent=%-20s interms=%3d stored=%10d B max_delta_depth=%d",
			arrow, e.Model, e.Kind, parent, e.Intermediates, e.StoredBytes, e.MaxDeltaDepth)
		if e.WeightBytes > 0 {
			fmt.Printf(" weights=%d B (new %d B, depth %d)", e.WeightBytes, e.WeightNewBytes, e.WeightDepth)
		}
		fmt.Println()
	}
	return nil
}

func runCatalog(dir string) error {
	path := filepath.Join(dir, "metadata.json")
	db, err := metadata.Load(path)
	if err != nil {
		return fmt.Errorf("no catalog at %s (run 'log' first): %w", path, err)
	}
	for _, name := range db.Models() {
		m := db.Model(name)
		fmt.Printf("%s (%s, %d examples, %d stages)\n", m.Name, m.Kind, m.TotalExamples, len(m.Stages))
		for _, it := range m.Intermediates {
			mat := " "
			if it.Materialized {
				mat = "M"
			}
			fmt.Printf("  [%s] %-16s stage=%2d cols=%4d rows=%6d queries=%d scheme=%s\n",
				mat, it.Name, it.StageIndex, len(it.Columns), it.Rows, it.QueryCount, it.QuantScheme)
		}
	}
	return nil
}
