package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"strings"
	"time"

	"mistique/client"
	"mistique/internal/cluster"
	"mistique/internal/obs"
)

// runCluster issues one scatter-gather query through the shard router
// against a set of running `mistique serve -shard` nodes:
//
//	mistique serve -dir /tmp/a -addr :7420 -shard s0 -pipelines 3 &
//	mistique serve -dir /tmp/b -addr :7421 -shard s1 -pipelines 3 &
//	mistique serve -dir /tmp/c -addr :7422 -shard s2 -pipelines 3 &
//	mistique cluster -shards :7420,:7421,:7422 \
//	  -model p1_v0 -interm model -col pred -op topk -k 10
//
// On a partial answer it prints what was served plus the missing-block
// manifest and exits nonzero — degraded is visible, never silent.
func runCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	shardList := fs.String("shards", "", "comma-separated shard base URLs (host:port or http://host:port; required)")
	model := fs.String("model", "", "model name")
	interm := fs.String("interm", "", "intermediate name")
	col := fs.String("col", "", "column to query")
	op := fs.String("op", "topk", "query: topk or filter")
	k := fs.Int("k", 10, "top-k size (op=topk)")
	pred := fs.String("pred", "gt", "filter predicate: gt, ge, lt, le (op=filter)")
	bound := fs.Float64("bound", 0, "filter bound (op=filter)")
	replication := fs.Int("replication", 2, "replicas per row-block")
	blockRows := fs.Int("block-rows", 512, "rows per placement block")
	timeout := fs.Duration("timeout", 30*time.Second, "whole-query deadline")
	limit := fs.Int("limit", 20, "max rows to print")
	fs.Parse(args)
	if *shardList == "" || *model == "" || *interm == "" || *col == "" {
		return fmt.Errorf("cluster needs -shards, -model, -interm and -col")
	}

	var shards []cluster.Shard
	for i, raw := range strings.Split(*shardList, ",") {
		base := strings.TrimSpace(raw)
		if base == "" {
			continue
		}
		if !strings.Contains(base, "://") {
			if strings.HasPrefix(base, ":") {
				base = "127.0.0.1" + base
			}
			if !strings.Contains(base, ":") {
				return fmt.Errorf("shard %q needs a port", raw)
			}
			base = "http://" + base
		}
		// The router owns retries, hedging and failover; client-side
		// retries underneath would double-spend the latency budget.
		c, err := client.New(base, client.WithMaxRetries(0), client.WithTimeout(*timeout))
		if err != nil {
			return fmt.Errorf("shard %q: %w", raw, err)
		}
		shards = append(shards, cluster.Shard{
			ID:      cluster.ShardID(fmt.Sprintf("s%d", i)),
			Backend: cluster.NewHTTPBackend(c),
		})
	}
	if len(shards) == 0 {
		return fmt.Errorf("no shards in %q", *shardList)
	}

	reg := obs.New()
	r, err := cluster.New(shards, cluster.Config{
		Replication: *replication,
		BlockRows:   *blockRows,
		// A one-shot query has no time to learn membership; rely on
		// per-block failover instead of background probes.
		DisableProbes: true,
		Obs:           reg,
	})
	if err != nil {
		return err
	}
	defer r.Close()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var qerr error
	switch *op {
	case "topk":
		res, err := r.TopK(ctx, *model, *interm, *col, *k)
		if res == nil {
			return err
		}
		qerr = err
		fmt.Printf("top-%d of %s.%s.%s across %d shard(s):\n", *k, *model, *interm, *col, len(shards))
		for i, e := range res.Entries {
			fmt.Printf("%3d. row %6d  %g\n", i+1, e.Row, e.Value)
		}
	case "filter":
		res, err := r.FilterRows(ctx, *model, *interm, *col, *pred, *bound)
		if res == nil {
			return err
		}
		qerr = err
		fmt.Printf("%d rows match %s %s %g across %d shard(s)\n", len(res.Rows), *col, *pred, *bound, len(shards))
		for i, row := range res.Rows {
			if i >= *limit {
				fmt.Printf("... and %d more\n", len(res.Rows)-*limit)
				break
			}
			fmt.Println(row)
		}
	default:
		return fmt.Errorf("unknown -op %q (want topk or filter)", *op)
	}

	snap := reg.Snapshot()
	fmt.Printf("hedges fired/won %d/%d  failovers %d  retries %d  shed %d\n",
		snap.Counters["mistique_cluster_hedges_fired_total"],
		snap.Counters["mistique_cluster_hedges_won_total"],
		snap.Counters["mistique_cluster_failovers_total"],
		snap.Counters["mistique_cluster_retries_total"],
		snap.Counters["mistique_cluster_shard_shed_total"])

	var de *cluster.DegradedError
	if errors.As(qerr, &de) {
		fmt.Printf("DEGRADED: %d row-block(s) unserved (cause: %v)\n", len(de.Missing), de.Cause)
		for _, m := range de.Missing {
			fmt.Printf("  missing block %d (rows [%d, %d))\n", m.Block, m.From, m.To)
		}
	}
	return qerr
}
