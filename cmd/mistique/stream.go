// Streaming-ingest and approximate-query subcommands. ingest pushes rows
// from stdin to a running server's WAL-backed live path; coldist asks for
// sampled column statistics with an error bound, remotely (-addr) or
// straight from a local store directory.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mistique/client"
)

func runIngest(args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	addr := fs.String("addr", "", "server base URL (e.g. http://127.0.0.1:7420; required)")
	model := fs.String("model", "", "stream model name")
	interm := fs.String("interm", "", "stream intermediate name")
	cols := fs.String("cols", "", "comma-separated column names")
	batch := fs.Int("batch", 256, "rows per acknowledged batch")
	tenant := fs.String("tenant", "", "tenant name for the server's ingest quotas")
	fs.Parse(args)
	if *addr == "" || *model == "" || *interm == "" || *cols == "" {
		return fmt.Errorf("ingest needs -addr, -model, -interm and -cols")
	}
	if *batch <= 0 {
		*batch = 256
	}
	columns := strings.Split(*cols, ",")

	var opts []client.Option
	if *tenant != "" {
		opts = append(opts, client.WithTenant(*tenant))
	}
	c, err := client.New(*addr, opts...)
	if err != nil {
		return err
	}

	// Rows come one per line, comma- or whitespace-separated floats.
	ctx := context.Background()
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pending := make([][]float32, 0, *batch)
	var total int64
	send := func() error {
		if len(pending) == 0 {
			return nil
		}
		res, err := c.IngestRows(ctx, *model, *interm, columns, pending)
		if err != nil {
			return err
		}
		total = res.Rows
		pending = pending[:0]
		return nil
	}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.FieldsFunc(text, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
		if len(fields) != len(columns) {
			return fmt.Errorf("stdin line %d: %d values, want %d", line, len(fields), len(columns))
		}
		row := make([]float32, len(fields))
		for j, f := range fields {
			v, err := strconv.ParseFloat(f, 32)
			if err != nil {
				return fmt.Errorf("stdin line %d: %q: %w", line, f, err)
			}
			row[j] = float32(v)
		}
		pending = append(pending, row)
		if len(pending) >= *batch {
			if err := send(); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if err := send(); err != nil {
		return err
	}
	fmt.Printf("stream %s.%s: %d rows acknowledged\n", *model, *interm, total)
	return nil
}

func runColDist(dir string, args []string) error {
	fs := flag.NewFlagSet("coldist", flag.ExitOnError)
	addr := fs.String("addr", "", "server base URL (empty: answer locally from -dir)")
	model := fs.String("model", "", "model name")
	interm := fs.String("interm", "", "intermediate name")
	col := fs.String("col", "", "column name")
	maxErr := fs.Float64("max-error", 0, "acceptable mean error as a fraction of the value range (0 = whatever the sample delivers)")
	fs.Parse(args)
	if *model == "" || *interm == "" || *col == "" {
		return fmt.Errorf("coldist needs -model, -interm and -col")
	}

	if *addr != "" {
		c, err := client.New(*addr)
		if err != nil {
			return err
		}
		d, err := c.ColDist(context.Background(), *model, *interm, *col, *maxErr)
		if err != nil {
			return err
		}
		printColDist(d.Strategy, d.Rows, d.Finite, d.NaN, d.PosInf, d.NegInf,
			float32(d.Min), float32(d.Max), d.Mean, d.MeanBound, d.Std,
			float32(d.P50), d.P50RankBound, d.SampleRows, d.FetchSeconds)
		return nil
	}
	if dir == "" {
		return fmt.Errorf("coldist needs -addr or -dir")
	}
	sys, err := open(dir, true, 0, "")
	if err != nil {
		return err
	}
	d, err := sys.ColDist(*model, *interm, *col, *maxErr)
	if err != nil {
		return err
	}
	printColDist(d.Strategy.String(), d.Rows, d.Finite, d.NaN, d.PosInf, d.NegInf,
		d.Min, d.Max, d.Mean, d.MeanBound, d.Std, d.P50, d.P50RankBound, d.SampleRows, d.FetchSeconds)
	return nil
}

func printColDist(strategy string, rows, finite, nan, posInf, negInf int64,
	min, max float32, mean, meanBound, std float64, p50 float32, p50Bound float64,
	sampleRows int64, fetchSecs float64) {
	fmt.Printf("strategy=%s rows=%d sample_rows=%d fetch=%.6fs\n", strategy, rows, sampleRows, fetchSecs)
	fmt.Printf("finite=%d nan=%d +inf=%d -inf=%d\n", finite, nan, posInf, negInf)
	fmt.Printf("min=%g max=%g\n", min, max)
	fmt.Printf("mean=%g ± %g  std=%g\n", mean, meanBound, std)
	fmt.Printf("p50=%g (rank ± %g)\n", p50, p50Bound)
}
