// Command mistique-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	mistique-bench [-exp id[,id...]] [-scale small|default|paper] [flags]
//
// Each experiment prints a table whose rows mirror what the paper reports;
// EXPERIMENTS.md records these outputs next to the paper's numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mistique/internal/experiments"
)

func main() {
	var (
		expFlag   = flag.String("exp", "all", "comma-separated experiment ids (fig5a, fig5bcd, fig6a, fig6b, fig7, fig8, fig9, table2, table3, fig10, fig11, fig14) or 'all'")
		scale     = flag.String("scale", "default", "workload scale: small, default, or paper (paper is hours on one core)")
		pipelines = flag.Int("pipelines", 0, "override: number of Zillow pipelines")
		examples  = flag.Int("examples", 0, "override: DNN examples")
		width     = flag.Int("vgg-width", 0, "override: VGG16 channel width multiplier")
		epochs    = flag.Int("epochs", 0, "override: checkpoints for storage experiments")
		seed      = flag.Int64("seed", 1, "synthetic data seed")
		list      = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	ids, byID := experiments.Registry()
	ablIDs, ablByID := experiments.AblationRegistry()
	for id, r := range ablByID {
		byID[id] = r
	}
	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		for _, id := range ablIDs {
			fmt.Println(id)
		}
		return
	}

	var opt experiments.Options
	switch *scale {
	case "small":
		opt = experiments.Options{NProps: 150, NTrain: 768, Pipelines: 5, DNNExamples: 128, VGGWidth: 2, Epochs: 2}
	case "default":
		opt = experiments.Options{NProps: 400, NTrain: 2048, Pipelines: 50, DNNExamples: 512, VGGWidth: 4, Epochs: 4}
	case "paper":
		opt = experiments.Options{NProps: 3000, NTrain: 16384, Pipelines: 50, DNNExamples: 4096, VGGWidth: 8, Epochs: 10}
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *pipelines > 0 {
		opt.Pipelines = *pipelines
	}
	if *examples > 0 {
		opt.DNNExamples = *examples
	}
	if *width > 0 {
		opt.VGGWidth = *width
	}
	if *epochs > 0 {
		opt.Epochs = *epochs
	}
	opt.Seed = *seed

	var run []string
	switch {
	case *expFlag == "all":
		run = ids
	case *expFlag == "ablations":
		run = ablIDs
	default:
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			if byID[id] == nil {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			run = append(run, id)
		}
	}

	for _, id := range run {
		start := time.Now()
		tab, err := byID[id](opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			os.Exit(1)
		}
		tab.Render(os.Stdout)
		fmt.Printf("  (%s completed in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}
