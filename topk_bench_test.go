package mistique

import (
	"sort"
	"testing"

	"mistique/internal/colstore"
	"mistique/internal/pipeline"
	"mistique/internal/zillow"
)

// topkBenchRows sizes the indexed-vs-scan benchmarks: large enough that a
// full column scan is measurably expensive and the priority list spans
// ~100 segments, so the indexed paths' prefix-decode advantage is real.
const topkBenchRows = 100_000

func benchIndexSystem(b *testing.B, disable bool) *System {
	b.Helper()
	s, err := Open(b.TempDir(), Config{Index: IndexConfig{Disable: disable}})
	if err != nil {
		b.Fatal(err)
	}
	spec, err := pipeline.SpecFromYAML(demoSpec)
	if err != nil {
		b.Fatal(err)
	}
	p, err := pipeline.New(spec)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.LogPipeline(p, zillow.Env(200, topkBenchRows, 1)); err != nil {
		b.Fatal(err)
	}
	return s
}

// selectiveBound returns roughly the 99th-percentile logerror value, so
// the filter benchmarks measure a selective predicate (the common
// diagnostic shape: "which examples have extreme error?").
func selectiveBound(b *testing.B, s *System) float32 {
	b.Helper()
	col, err := s.GetColumn("demo", "joined", "logerror", 0)
	if err != nil {
		b.Fatal(err)
	}
	sorted := append([]float32{}, col...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)*99/100]
}

// BenchmarkTOPKIndexed: warm-index top-k — decodes only the head of the
// priority list.
func BenchmarkTOPKIndexed(b *testing.B) {
	s := benchIndexSystem(b, false)
	if _, err := s.TopK("demo", "joined", "logerror", 10); err != nil {
		b.Fatal(err) // build outside the timer: this bench is the warm probe
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.TopK("demo", "joined", "logerror", 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTOPKScan: the same query with the index disabled — full column
// fetch plus a full ranking, the baseline the index must beat.
func BenchmarkTOPKScan(b *testing.B) {
	s := benchIndexSystem(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.TopK("demo", "joined", "logerror", 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTOPKColdBuild: invalidate-then-probe, i.e. column fetch + index
// build + publish + probe. The lazy-build bet is that this stays under two
// full scans, so the build amortizes by the second query.
func BenchmarkTOPKColdBuild(b *testing.B) {
	s := benchIndexSystem(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s.nidx.InvalidateModel("demo")
		b.StartTimer()
		if _, err := s.TopK("demo", "joined", "logerror", 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFilterRowsIndexed: selective predicate through the index —
// only segments overlapping the bound decode.
func BenchmarkFilterRowsIndexed(b *testing.B) {
	s := benchIndexSystem(b, false)
	bound := selectiveBound(b, s)
	if _, err := s.FilterRows("demo", "joined", "logerror", colstore.Ge, bound); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.FilterRows("demo", "joined", "logerror", colstore.Ge, bound); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFilterRowsScanBaseline: the same selective predicate through
// the zone-map chunk scan (index disabled). Random row order leaves the
// zone maps unable to prune, so this is an honest full scan.
func BenchmarkFilterRowsScanBaseline(b *testing.B) {
	s := benchIndexSystem(b, true)
	bound := selectiveBound(b, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.FilterRows("demo", "joined", "logerror", colstore.Ge, bound); err != nil {
			b.Fatal(err)
		}
	}
}
