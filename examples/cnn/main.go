// CNN activation diagnosis: log a convolutional network's per-layer
// activations across two fine-tuning checkpoints, then run the paper's DNN
// diagnostics — TOPK activating images, per-class VIS means, SVCCA layer
// similarity and NetDissect concept alignment — against the store.
//
//	go run ./examples/cnn
package main

import (
	"fmt"
	"log"
	"os"

	"mistique"
	"mistique/internal/colstore"
	"mistique/internal/data"
	"mistique/internal/diag"
	"mistique/internal/nn"
)

func main() {
	dir, err := os.MkdirTemp("", "mistique-cnn-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sys, err := mistique.Open(dir, mistique.Config{
		RowBlockRows: 128,
		Store:        colstore.Config{Mode: colstore.ModeArrival},
	})
	if err != nil {
		log.Fatal(err)
	}

	// A VGG16-shaped network fine-tuned on synthetic CIFAR10-like images:
	// conv stack frozen, FC head trainable — the paper's CIFAR10_VGG16.
	const classes = 10
	net := nn.VGG16("vgg16", classes, 2, 1)
	net.FreezeConv()
	imgs, labels := data.Images(256, classes, 2)

	// Log two checkpoints. Frozen conv layers produce byte-identical
	// activations, so epoch 1 dedups against epoch 0.
	for epoch := 0; epoch < 2; epoch++ {
		name := fmt.Sprintf("vgg16@e%d", epoch)
		rep, err := sys.LogDNN(name, net, imgs, mistique.DNNLogOptions{Scheme: mistique.SchemePool2})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("logged %s: %d layer intermediates, %d B stored, %d chunks deduped\n",
			name, rep.Intermediates, rep.StoredBytes, rep.ColumnsDedup)
		if epoch == 0 {
			net.TrainEpochs(imgs, labels, 1, 32, 0.05, func(_ int, loss float64) {
				fmt.Printf("  fine-tuned FC head for 1 epoch (loss %.3f)\n", loss)
			})
		}
	}

	// --- TOPK: which images excite unit 3 of conv3_3 the most? ---
	res, err := sys.GetIntermediate("vgg16@e1", "conv3_3", []string{"u3"}, 0)
	if err != nil {
		log.Fatal(err)
	}
	top := diag.TopK(res.Data.Col(0), 5)
	fmt.Printf("\nTOPK — images most activating conv3_3/u3 (fetched via %s): %v\n", res.Strategy, top)
	fmt.Print("their classes: ")
	for _, i := range top {
		fmt.Printf("%d ", labels[i])
	}
	fmt.Println()

	// --- VIS: per-class mean activations of the FC layer ---
	fc, err := sys.GetIntermediate("vgg16@e1", "relu_fc1", nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	heat, err := diag.VIS(fc.Data, labels, classes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nVIS — mean activation of the first 8 fc1 units per class:")
	for c := 0; c < classes; c += 3 {
		fmt.Printf("  class %d:", c)
		for j := 0; j < 8 && j < heat.Cols; j++ {
			fmt.Printf(" %6.3f", heat.At(c, j))
		}
		fmt.Println()
	}

	// --- SVCCA: how similar are conv4_3 and the logits? ---
	rep4, err := sys.GetIntermediate("vgg16@e1", "conv4_3", nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	logits, err := sys.GetIntermediate("vgg16@e1", "logits", nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	sub := rep4.Data.SelectCols(stride(rep4.Data.Cols, 12))
	cca, err := diag.SVCCA(sub, logits.Data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSVCCA — mean CCA coefficient between conv4_3 and logits: %.4f\n", cca)

	// --- NetDissect: does any conv1_1 unit align with "bright region"? ---
	raw, err := sys.RerunRawDNN("vgg16@e1", "conv1_1", 64)
	if err != nil {
		log.Fatal(err)
	}
	concept := data.ConceptMasks(imgs, 64)
	iou, err := diag.NetDissect(raw, concept, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	best, bestIoU := 0, 0.0
	for k, v := range iou {
		if v > bestIoU {
			best, bestIoU = k, v
		}
	}
	fmt.Printf("NetDissect — conv1_1 unit best aligned with the brightness concept: u%d (IoU %.3f)\n", best, bestIoU)
}

func stride(total, want int) []int {
	if want > total {
		want = total
	}
	step := total / want
	out := make([]int, 0, want)
	for j := 0; j < total && len(out) < want; j += step {
		out = append(out, j)
	}
	return out
}
