// Cross-version dedup across a fine-tuning run: log ten checkpoints of
// the same CNN as delta-linked generations, watch what each epoch
// actually costs on disk, then walk the lineage chain and read an old
// version back through its delta chain.
//
// The run uses the oracle harness from internal/cas/oracletest — the same
// simulated fine-tune the differential tests prove bit-exact — so what
// this example prints is exactly what the test suite verifies.
//
//	go run ./examples/epochs
package main

import (
	"fmt"
	"log"
	"os"

	"mistique"
	"mistique/internal/cas/oracletest"
)

func main() {
	dir, err := os.MkdirTemp("", "mistique-epochs-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Default config: similarity-partitioned store, exact dedup and delta
	// generations on, weight snapshots in the content-addressed store.
	sys, err := mistique.Open(dir, mistique.Config{})
	if err != nil {
		log.Fatal(err)
	}

	const epochs = 10
	sc := oracletest.NewScenario(1, 64)
	// Log pool2 (frozen conv output) and the drifting fc head, each epoch
	// chained to the previous via Parent.
	layers := append([]int{9}, oracletest.FCLayers...)

	fmt.Println("epoch  stored(act)  dedup  delta  weights(new)  depth")
	for e := 0; e < epochs; e++ {
		sc.Advance(e)
		rep, err := oracletest.LogEpoch(sys, sc.Snapshot(), sc.Input, "cnn", e,
			mistique.SchemeFull, true, layers)
		if err != nil {
			log.Fatal(err)
		}
		name := oracletest.VersionName("cnn", e)
		wi, _ := sys.WeightStore().Info(name)
		fmt.Printf("%5d  %8d B  %5d  %5d  %9d B  %5d\n",
			e, rep.StoredBytes, rep.ColumnsDedup, rep.ColumnsDelta, rep.WeightNewBytes, wi.Depth)
	}
	if err := sys.Flush(); err != nil {
		log.Fatal(err)
	}

	// Walk the lineage chain of the last checkpoint, newest first.
	chain, err := sys.Lineage(oracletest.VersionName("cnn", epochs-1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlineage of", chain[0].Model)
	for _, e := range chain {
		parent := e.Parent
		if parent == "" {
			parent = "(root)"
		}
		fmt.Printf("  %s <- %s  interms=%d stored=%d B chain-depth=%d weights=%d B (new %d B)\n",
			e.Model, parent, e.Intermediates, e.StoredBytes, e.MaxDeltaDepth, e.WeightBytes, e.WeightNewBytes)
	}

	// Read an early version back: the store pages in its delta chain and
	// reconstructs bit-exact activations.
	mid := oracletest.VersionName("cnn", 2)
	res, err := sys.GetIntermediate(mid, "logits", nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nread %s/logits via %s: %dx%d values, first logit of image 0 = %.4f\n",
		mid, res.Strategy, res.Data.Rows, res.Data.Cols, res.Data.At(0, 0))

	total, err := sys.DiskBytes()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d checkpoints on disk: %d B total\n", epochs, total)
}
