// Adaptive materialization demo: with Config.Gamma > 0, MISTIQUE logs
// only metadata at pipeline time; an intermediate is stored only after the
// query-time savings it would provide, per byte, cross the gamma threshold
// (Eq. 5). Watch the strategy flip from RERUN to READ as queries repeat.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"os"

	"mistique"
	"mistique/internal/cost"
	"mistique/internal/zillow"
)

func main() {
	dir, err := os.MkdirTemp("", "mistique-adaptive-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sys, err := mistique.Open(dir, mistique.Config{
		// Gamma in seconds/byte: materialize once an intermediate has
		// earned this much saved query time per byte it would occupy.
		// (The paper's example is 0.5 s/KB at datacenter scale; this value
		// is scaled to the demo's small tables.)
		Gamma: 8e-9,
		Cost:  cost.Params{ReadBytesPerSec: 200e6, InputBytesPerSec: 500e6},
	})
	if err != nil {
		log.Fatal(err)
	}

	env := zillow.Env(500, 4096, 3)
	pipes, err := zillow.Build(env)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.LogPipeline(pipes[0], env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("logged %s with adaptive materialization: %d intermediates cataloged, %d deferred, %d B stored\n",
		rep.Model, rep.Intermediates, rep.Skipped, rep.StoredBytes)

	fmt.Println("\nrepeatedly querying the 'model' (training predictions) intermediate:")
	for i := 1; i <= 5; i++ {
		res, err := sys.GetIntermediate("p1_v0", "model", nil, 0)
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if res.MaterializedNow {
			marker = "  <-- gamma crossed: intermediate materialized"
		}
		fmt.Printf("  query %d: strategy=%-5s fetch=%8.4fs%s\n", i, res.Strategy, res.FetchSeconds, marker)
	}

	if err := sys.Flush(); err != nil {
		log.Fatal(err)
	}
	disk, err := sys.DiskBytes()
	if err != nil {
		log.Fatal(err)
	}
	it := sys.Metadata().Intermediate("p1_v0", "model")
	fmt.Printf("\nfinal state: materialized=%v after %d queries, %d B on disk\n", it.Materialized, it.QueryCount, disk)
	fmt.Println("a cold intermediate (e.g. 'props_raw') is never stored:")
	cold := sys.Metadata().Intermediate("p1_v0", "props_raw")
	fmt.Printf("  props_raw materialized=%v queries=%d\n", cold.Materialized, cold.QueryCount)
}
