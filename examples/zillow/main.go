// Zillow diagnosis session: log several competing pipelines and run the
// paper's motivating TRAD workload — compare two models' performance by
// house type (COL_DIFF), drill into the worst home (MCFR), and find how it
// compares to its nearest neighbors (KNN) — all from stored intermediates.
//
//	go run ./examples/zillow
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"mistique"
	"mistique/internal/colstore"
	"mistique/internal/diag"
	"mistique/internal/zillow"
)

func main() {
	dir, err := os.MkdirTemp("", "mistique-zillow-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sys, err := mistique.Open(dir, mistique.Config{
		Store: colstore.Config{Mode: colstore.ModeSimilarity},
	})
	if err != nil {
		log.Fatal(err)
	}

	env := zillow.Env(600, 4096, 7)
	pipes, err := zillow.Build(env)
	if err != nil {
		log.Fatal(err)
	}
	// Log one variant each of the LightGBM (p1) and ElasticNet (p3)
	// templates plus a second LightGBM variant — a realistic "which model
	// should I ship" comparison set.
	names := []string{}
	for _, p := range pipes {
		switch p.Name {
		case "p1_v0", "p1_v2", "p3_v0":
			rep, err := sys.LogPipeline(p, env)
			if err != nil {
				log.Fatal(err)
			}
			names = append(names, p.Name)
			fmt.Printf("logged %-6s: stored %7d B (deduped %d chunks against earlier pipelines)\n",
				rep.Model, rep.StoredBytes, rep.ColumnsDedup)
		}
	}

	// --- COL_DIFF: compare p1_v0 and p3_v0 holdout performance by type ---
	a, err := sys.GetIntermediate(names[0], "pred_holdout", []string{"pred"}, 0)
	if err != nil {
		log.Fatal(err)
	}
	b, err := sys.GetIntermediate("p3_v0", "pred_holdout", []string{"pred"}, 0)
	if err != nil {
		log.Fatal(err)
	}
	joined := env["test"].JoinInner(env["properties"], "parcelid")
	types := joined.Col("propertytype").S
	n := len(types)
	cmp, err := diag.ColDiff(a.Data.Col(0)[:n], b.Data.Col(0)[:n], types)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nCOL_DIFF — mean holdout prediction by house type (p1_v0 vs p3_v0):")
	for typ, means := range cmp {
		fmt.Printf("  %-10s %+.5f  vs  %+.5f\n", typ, means[0], means[1])
	}

	// --- worst home: largest training residual in p1_v0 ---
	preds, err := sys.GetIntermediate(names[0], "model", []string{"pred", "logerror"}, 0)
	if err != nil {
		log.Fatal(err)
	}
	worst, worstErr := 0, 0.0
	for i := 0; i < preds.Data.Rows; i++ {
		if e := math.Abs(float64(preds.Data.At(i, 0) - preds.Data.At(i, 1))); e > worstErr {
			worst, worstErr = i, e
		}
	}
	fmt.Printf("\nworst residual: row %d (|err| = %.4f)\n", worst, worstErr)

	// --- MCFR: examine the raw features of the worst home ---
	features, err := sys.GetIntermediate(names[0], "train_split", nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("features of the worst home:")
	for j, name := range features.Cols {
		fmt.Printf("  %-24s %10.4g\n", name, features.Data.At(worst, j))
	}

	// --- KNN: how does the model do on the most similar homes? ---
	neighbors := diag.KNN(features.Data, features.Data.Row(worst), 10, worst)
	var meanAbs float64
	for _, i := range neighbors {
		meanAbs += math.Abs(float64(preds.Data.At(i, 0) - preds.Data.At(i, 1)))
	}
	meanAbs /= float64(len(neighbors))
	fmt.Printf("\nKNN: mean |residual| over the 10 most similar homes: %.4f (vs %.4f on the worst home)\n", meanAbs, worstErr)
	fmt.Printf("queries answered via %s — for TRAD pipelines reading stored intermediates always beats re-running\n", a.Strategy)
}
