// RNN diagnosis: the paper's future-work extension to recurrent models.
// An Elman RNN is expressed as shared-weight step layers, so every
// timestep's hidden state is a loggable intermediate — query how the
// hidden representation separates classes as the sequence unfolds.
//
//	go run ./examples/rnn
package main

import (
	"fmt"
	"log"
	"os"

	"mistique"
	"mistique/internal/colstore"
	"mistique/internal/data"
	"mistique/internal/diag"
	"mistique/internal/nn"
)

func main() {
	dir, err := os.MkdirTemp("", "mistique-rnn-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	const (
		seqLen   = 10
		inputDim = 2
		hidden   = 12
		classes  = 3
	)
	seqs, labels := data.Sequences(120, seqLen, inputDim, classes, 1)
	net := nn.ElmanRNN("rnn", seqLen, inputDim, hidden, classes, 2)
	net.TrainEpochs(seqs, labels, 25, 24, 0.05, nil)
	fmt.Printf("trained Elman RNN: accuracy %.2f on %d sequences\n", net.Accuracy(seqs, labels), seqs.N)

	sys, err := mistique.Open(dir, mistique.Config{
		RowBlockRows: 64,
		Store:        colstore.Config{Mode: colstore.ModeArrival},
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.LogDNN("rnn", net, seqs, mistique.DNNLogOptions{Scheme: mistique.SchemeFull})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("logged %d step intermediates (%d B stored; %d pass-through chunks deduped)\n\n",
		rep.Intermediates, rep.StoredBytes, rep.ColumnsDedup)

	// How does class separation evolve across timesteps? Fetch each step's
	// hidden state from the store and measure SVCCA against the logits.
	logits, err := sys.GetIntermediate("rnn", "logits", nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	hiddenCols := make([]string, hidden)
	for j := range hiddenCols {
		hiddenCols[j] = fmt.Sprintf("u%d", seqLen*inputDim+j) // the hidden tail
	}
	fmt.Println("SVCCA(hidden state at step t, final logits):")
	for t := 0; t < seqLen; t += 2 {
		res, err := sys.GetIntermediate("rnn", fmt.Sprintf("step%d", t), hiddenCols, 0)
		if err != nil {
			log.Fatal(err)
		}
		cca, err := diag.SVCCA(res.Data, logits.Data)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  step %2d: %.4f  (fetched via %s)\n", t, cca, res.Strategy)
	}

	// Per-class mean hidden activations at the final step (the VIS query).
	last, err := sys.GetIntermediate("rnn", fmt.Sprintf("step%d", seqLen-1), hiddenCols, 0)
	if err != nil {
		log.Fatal(err)
	}
	heat, err := diag.VIS(last.Data, labels, classes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nVIS — mean final hidden state per class (first 6 units):")
	for c := 0; c < classes; c++ {
		fmt.Printf("  class %d:", c)
		for j := 0; j < 6; j++ {
			fmt.Printf(" %+6.3f", heat.At(c, j))
		}
		fmt.Println()
	}
}
