// Quickstart: log one ML pipeline into MISTIQUE, then answer a diagnostic
// question from the stored intermediates.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"mistique"
	"mistique/internal/diag"
	"mistique/internal/pipeline"
	"mistique/internal/zillow"
)

// A pipeline is declared in MISTIQUE's YAML specification format (modeled
// after Airflow-style configs, as in the paper).
const spec = `
name: quickstart
stages:
  - name: props
    op: read_table
    params: {table: properties}
  - name: sales
    op: read_table
    params: {table: train}
  - name: joined
    op: join
    inputs: [sales, props]
    params: {on: parcelid}
  - name: filled
    op: fillna
    inputs: [joined]
  - name: splits
    op: split
    inputs: [filled]
    params: {frac: 0.8, seed: 42}
    outputs: [train_split, eval_split]
  - name: model
    op: train_xgb
    inputs: [train_split]
    params: {target: logerror, rounds: 15, max_depth: 4, eta: 0.15}
`

func main() {
	dir, err := os.MkdirTemp("", "mistique-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Open a system and log the pipeline: MISTIQUE runs it, captures
	//    every intermediate, de-duplicates identical column chunks and
	//    stores the rest column-by-column.
	sys, err := mistique.Open(dir, mistique.Config{})
	if err != nil {
		log.Fatal(err)
	}
	p, err := pipeline.New(mustSpec(spec))
	if err != nil {
		log.Fatal(err)
	}
	env := zillow.Env(500, 4000, 1) // synthetic Zillow-style tables
	rep, err := sys.LogPipeline(p, env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("logged %q: %d intermediates, %d B stored (%d B before dedup)\n",
		rep.Model, rep.Intermediates, rep.StoredBytes, rep.LogicalBytes)

	// 2. Diagnostic question: how does prediction error distribute?
	//    The engine decides whether to read the stored intermediate or
	//    re-run the model — for TRAD pipelines reading always wins.
	res, err := sys.GetIntermediate("quickstart", "model", []string{"pred", "logerror"}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fetched %dx%d via %s in %.4fs (est read %.4fs vs rerun %.4fs)\n",
		res.Data.Rows, res.Data.Cols, res.Strategy, res.FetchSeconds, res.EstReadSecs, res.EstRerunSecs)

	errs := make([]float32, res.Data.Rows)
	for i := range errs {
		errs[i] = res.Data.At(i, 0) - res.Data.At(i, 1)
	}
	hist := diag.ColDist(errs, 8)
	fmt.Printf("residual distribution over [%.4f, %.4f]:\n", hist.Min, hist.Max)
	for i, c := range hist.Counts {
		fmt.Printf("  bin %d: %s (%d)\n", i, bar(c), c)
	}

	// 3. Find the training example with the worst residual and inspect it.
	worst := diag.TopK(absAll(errs), 1)[0]
	features, err := sys.GetIntermediate("quickstart", "train_split", nil, worst+1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worst-predicted home (row %d):\n", worst)
	for j, name := range features.Cols {
		fmt.Printf("  %-24s %.4g\n", name, features.Data.At(worst, j))
	}
}

func mustSpec(src string) pipeline.Spec {
	s, err := pipeline.SpecFromYAML(src)
	if err != nil {
		log.Fatal(err)
	}
	return s
}

func absAll(xs []float32) []float32 {
	out := make([]float32, len(xs))
	for i, v := range xs {
		if v < 0 {
			v = -v
		}
		out[i] = v
	}
	return out
}

func bar(n int) string {
	if n > 60 {
		n = 60
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}
