package mistique

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"mistique/internal/cost"
	"mistique/internal/obs"
)

// The observability layer (see DESIGN.md "Observability"). One obs.Registry
// per System carries every engine-level instrument; the column store and
// the catalog register their own instruments in the same registry, so a
// single snapshot covers ingest, flush/compaction, query and recovery.
//
// The cost model (Sec. 5.1, Eq. 5) is the system's central quantitative
// claim, so the query path additionally tracks estimate-vs-actual error
// per strategy: every non-recovered query observes
// |estimate − actual| / actual into a per-strategy histogram, giving
// Calibrate a live-traffic error signal to learn from.

// systemMetrics holds the engine's instruments. Everything lives in reg;
// the typed fields are cached handles so hot paths skip the registry map.
type systemMetrics struct {
	reg *obs.Registry

	// Ingest.
	modelsLogged          *obs.Counter
	ingestSeconds         *obs.Histogram
	ingestQuantizeSeconds *obs.Histogram
	ingestForwardSeconds  *obs.Histogram

	// Query.
	queries             *obs.Counter
	queryReadSeconds    *obs.Histogram
	queryRerunSeconds   *obs.Histogram
	queryFilterSeconds  *obs.Histogram
	queryGetRowsSeconds *obs.Histogram
	queryTopKSeconds    *obs.Histogram
	queryKNNSeconds     *obs.Histogram
	costReadRelErr      *obs.Histogram
	costRerunRelErr     *obs.Histogram
	materializations    *obs.Counter
	slowQueries         *obs.Counter

	// Approximate (SAMPLE) query path.
	sampleBuilds       *obs.Counter
	sampleQueries      *obs.Counter
	sampleFallbacks    *obs.Counter
	querySampleSeconds *obs.Histogram
	costSampleRelErr   *obs.Histogram

	// Streaming ingest / WAL.
	streamBatches      *obs.Counter
	streamRows         *obs.Counter
	walAppendBytes     *obs.Counter
	walReplays         *obs.Counter
	walReplayedRecords *obs.Counter
	walRewrites        *obs.Counter
	walTruncatedTails  *obs.Counter

	// Recovery.
	rerunFallbacks *obs.Counter
	heals          *obs.Counter
	healSeconds    *obs.Histogram

	// Session caches over this system.
	sessionHits      *obs.Counter
	sessionMisses    *obs.Counter
	sessionEvictions *obs.Counter
}

func newSystemMetrics() *systemMetrics {
	reg := obs.New()
	return &systemMetrics{
		reg: reg,

		modelsLogged:          reg.Counter("mistique_models_logged_total", "successful LogPipeline/LogDNN calls"),
		ingestSeconds:         reg.Histogram("mistique_ingest_seconds", "wall time of one LogPipeline/LogDNN call"),
		ingestQuantizeSeconds: reg.Histogram("mistique_ingest_quantize_seconds", "per-column quantizer fit time (KBIT/THRESHOLD calibration included)"),
		ingestForwardSeconds:  reg.Histogram("mistique_ingest_forward_seconds", "DNN per-layer forward time for one logging batch"),

		queries:             reg.Counter("mistique_queries_total", "GetIntermediate and Fetch calls answered"),
		queryReadSeconds:    reg.Histogram("mistique_query_read_seconds", "fetch wall time of queries answered by READ"),
		queryRerunSeconds:   reg.Histogram("mistique_query_rerun_seconds", "fetch wall time of queries answered by RERUN"),
		queryFilterSeconds:  reg.Histogram("mistique_query_filter_rows_seconds", "FilterRows (zone-map predicate scan) wall time"),
		queryGetRowsSeconds: reg.Histogram("mistique_query_get_rows_seconds", "GetRows (row-range read) wall time"),
		queryTopKSeconds:    reg.Histogram("mistique_query_topk_seconds", "TopK (neuron top-k probe) wall time"),
		queryKNNSeconds:     reg.Histogram("mistique_query_knn_seconds", "KNN (block-pruned nearest neighbors) wall time"),
		costReadRelErr:      reg.Histogram("mistique_cost_read_rel_error", "cost-model relative error |est-actual|/actual for READ queries"),
		costRerunRelErr:     reg.Histogram("mistique_cost_rerun_rel_error", "cost-model relative error |est-actual|/actual for RERUN queries"),
		materializations:    reg.Counter("mistique_adaptive_materializations_total", "intermediates materialized by a query crossing the gamma threshold"),
		slowQueries:         reg.Counter("mistique_slow_queries_total", "queries recorded in the slow-query log"),

		sampleBuilds:       reg.Counter("mistique_sample_builds_total", "reservoir samples built at ingest"),
		sampleQueries:      reg.Counter("mistique_sample_queries_total", "approximate queries answered from a sample"),
		sampleFallbacks:    reg.Counter("mistique_sample_fallbacks_total", "approximate queries that fell back to the exact path (no sample, missing column, or bound wider than requested)"),
		querySampleSeconds: reg.Histogram("mistique_query_sample_seconds", "fetch wall time of queries answered by SAMPLE"),
		costSampleRelErr:   reg.Histogram("mistique_cost_sample_rel_error", "cost-model relative error |est-actual|/actual for SAMPLE queries"),

		streamBatches:      reg.Counter("mistique_stream_batches_total", "streaming ingest batches acknowledged"),
		streamRows:         reg.Counter("mistique_stream_rows_total", "streaming ingest rows acknowledged"),
		walAppendBytes:     reg.Counter("mistique_wal_append_bytes_total", "bytes appended to stream WALs (frames included)"),
		walReplays:         reg.Counter("mistique_wal_replays_total", "stream WALs replayed at Open"),
		walReplayedRecords: reg.Counter("mistique_wal_replayed_records_total", "batch records re-offered during WAL replay"),
		walRewrites:        reg.Counter("mistique_wal_rewrites_total", "WAL checkpoints (rewrites back to the header) at Flush"),
		walTruncatedTails:  reg.Counter("mistique_wal_truncated_tails_total", "torn WAL tails truncated at Open"),

		rerunFallbacks: reg.Counter("mistique_query_rerun_fallbacks_total", "READ queries transparently recovered by re-running the model"),
		heals:          reg.Counter("mistique_heals_total", "heal-and-retry re-materializations on scan/row-range paths"),
		healSeconds:    reg.Histogram("mistique_heal_seconds", "re-materialization time of one healed intermediate"),

		sessionHits:      reg.Counter("mistique_session_hits_total", "session result-cache hits across all Sessions"),
		sessionMisses:    reg.Counter("mistique_session_misses_total", "session result-cache misses across all Sessions"),
		sessionEvictions: reg.Counter("mistique_session_evictions_total", "session result-cache evictions across all Sessions"),
	}
}

// observeQuery records the per-strategy fetch latency and, for queries the
// cost model actually drove (not recovered fallbacks), the
// estimate-vs-actual relative error.
func (m *systemMetrics) observeQuery(res *Result) {
	actual := res.FetchSeconds
	var latency, relErr *obs.Histogram
	var est float64
	if res.Strategy == cost.Read {
		latency, relErr, est = m.queryReadSeconds, m.costReadRelErr, res.EstReadSecs
	} else {
		latency, relErr, est = m.queryRerunSeconds, m.costRerunRelErr, res.EstRerunSecs
	}
	latency.Observe(actual)
	if res.Recovered {
		// The READ estimate drove the decision, but the fetch degenerated
		// into a rerun; the error is not the model's to learn from.
		return
	}
	if est > 0 && actual > 0 {
		relErr.Observe(absFloat(est-actual) / actual)
	}
}

// observeSample records one approximate query answered from a sample:
// latency, plus the SAMPLE strategy's estimate-vs-actual relative error —
// the same honesty signal the READ/RERUN paths feed.
func (m *systemMetrics) observeSample(est, actual float64) {
	m.sampleQueries.Inc()
	m.querySampleSeconds.Observe(actual)
	if est > 0 && actual > 0 {
		m.costSampleRelErr.Observe(absFloat(est-actual) / actual)
	}
}

func absFloat(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Metrics returns a structured snapshot of every engine, store and catalog
// metric, folding in the column store's Stats counters under canonical
// mistique_store_* names — the one-call view that subsumes the previously
// scattered Stats fields. The snapshot marshals directly to JSON and
// writes itself in Prometheus text format via WritePrometheus.
func (s *System) Metrics() *obs.Snapshot {
	snap := s.metrics.reg.Snapshot()
	st := s.store.Stats()
	fold := func(name, help string, v int64) {
		snap.Counters[name] = v
		snap.Help[name] = help
	}
	fold("mistique_store_chunks_put_total", "PutColumn calls", st.ChunksPut)
	fold("mistique_store_chunks_deduped_total", "puts answered by an existing identical chunk", st.ChunksDeduped)
	fold("mistique_store_chunks_stored_total", "chunks physically stored", st.ChunksStored)
	fold("mistique_store_evictions_total", "partitions evicted from the buffer pool", st.Evictions)
	fold("mistique_store_disk_reads_total", "partition files read from disk", st.DiskReads)
	fold("mistique_store_disk_writes_total", "partition files written to disk", st.DiskWrites)
	fold("mistique_store_disk_read_bytes_total", "compressed bytes read from disk", st.DiskReadBytes)
	fold("mistique_store_disk_write_bytes_total", "compressed bytes written to disk", st.DiskWriteBytes)
	fold("mistique_store_recovered_reads_total", "queries answered by rerun after hitting unavailable chunks", st.RecoveredReads)
	fold("mistique_store_corrupt_partitions_total", "partitions quarantined after checksum failure or loss", st.CorruptPartitions)
	fold("mistique_store_fsyncs_total", "fsyncs issued for durability", st.FsyncCount)
	g := func(name, help string, v int64) {
		snap.Gauges[name] = v
		snap.Help[name] = help
	}
	g("mistique_store_partitions", "partitions known to the store", st.Partitions)
	g("mistique_store_logical_bytes", "encoded bytes before dedup (STORE_ALL footprint)", st.LogicalBytes)
	g("mistique_store_stored_bytes", "encoded bytes actually kept (pre-compression)", st.StoredBytes)
	appends, syncs, walBytes, nStreams := s.streamWALStats()
	fold("mistique_wal_appends_total", "records appended across live stream WALs", appends)
	fold("mistique_wal_fsyncs_total", "fsyncs issued by live stream WALs", syncs)
	g("mistique_wal_bytes", "current total size of live stream WAL files", walBytes)
	g("mistique_streams", "live streaming-ingest states", int64(nStreams))
	return snap
}

// WritePrometheus writes the full metrics snapshot in Prometheus text
// exposition format.
func (s *System) WritePrometheus(w io.Writer) error {
	return s.Metrics().WritePrometheus(w)
}

// Obs returns the System's observability registry so co-located components
// (the HTTP query service in internal/server) can register their
// instruments in the same namespace and surface through the same
// /metrics and /statsz expositions. Never nil.
func (s *System) Obs() *obs.Registry { return s.metrics.reg }

// slowQueryRecord is one line of the slow-query log: everything needed to
// replay the cost-model decision offline (model, intermediate, strategy,
// both estimates, the measured wall time).
type slowQueryRecord struct {
	Time         string  `json:"time"`
	Op           string  `json:"op"`
	Model        string  `json:"model"`
	Intermediate string  `json:"intermediate"`
	Strategy     string  `json:"strategy"`
	Cols         int     `json:"cols"`
	NEx          int     `json:"n_ex"`
	EstReadSecs  float64 `json:"est_read_secs"`
	EstRerunSecs float64 `json:"est_rerun_secs"`
	Seconds      float64 `json:"seconds"`
	Recovered    bool    `json:"recovered,omitempty"`
	Materialized bool    `json:"materialized_now,omitempty"`
}

// slowQueryLogName is the JSON-lines slow-query log, rooted next to the
// store directory.
const slowQueryLogName = "slow_queries.jsonl"

// noteSlowQuery appends a record to the slow-query log when the query's
// wall time crossed Config.SlowQueryThreshold. Best effort: a failed
// append drops the record (the counter still moves), never the query.
// The log is size-bounded: past Config.SlowQueryLogMaxBytes it rotates to
// slow_queries.jsonl.1, replacing the previous generation, so the log's
// footprint stays under two generations no matter how long the server runs.
func (s *System) noteSlowQuery(rec slowQueryRecord) {
	if s.cfg.SlowQueryThreshold <= 0 || rec.Seconds < s.cfg.SlowQueryThreshold.Seconds() {
		return
	}
	s.metrics.slowQueries.Inc()
	rec.Time = time.Now().UTC().Format(time.RFC3339Nano)
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	s.slowMu.Lock()
	defer s.slowMu.Unlock()
	path := filepath.Join(s.dir, slowQueryLogName)
	if s.slowLog == nil {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return
		}
		s.slowLog = f
		if fi, err := f.Stat(); err == nil {
			s.slowSize = fi.Size()
		}
	}
	if n, err := fmt.Fprintf(s.slowLog, "%s\n", line); err == nil {
		s.slowSize += int64(n)
	}
	if s.slowSize < s.cfg.SlowQueryLogMaxBytes {
		return
	}
	// Rotate: the current log becomes the single kept generation.
	s.slowLog.Close()
	s.slowLog = nil
	s.slowSize = 0
	os.Rename(path, path+".1")
}
